(* Tests for the storage substrate: content model, extent map, disk
   mechanics, and the AHCI / IDE controller state machines. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Mmio = Bmcast_hw.Mmio
module Pio = Bmcast_hw.Pio
module Irq = Bmcast_hw.Irq
module Content = Bmcast_storage.Content
module Extent_map = Bmcast_storage.Extent_map
module Dma = Bmcast_storage.Dma
module Disk = Bmcast_storage.Disk
module Ahci = Bmcast_storage.Ahci
module Ide = Bmcast_storage.Ide

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let content_testable = Alcotest.testable Content.pp Content.equal

(* --- Content --- *)

let test_content_equal () =
  check_bool "zero" true (Content.equal Content.Zero Content.Zero);
  check_bool "image" true (Content.equal (Content.Image 5) (Content.Image 5));
  check_bool "image neq" false (Content.equal (Content.Image 5) (Content.Image 6));
  check_bool "kinds" false (Content.equal Content.Zero (Content.Image 0))

let test_content_constructors () =
  let img = Content.image_sectors ~lba:10 ~count:3 in
  Alcotest.(check (array content_testable))
    "image run"
    [| Content.Image 10; Content.Image 11; Content.Image 12 |]
    img;
  let d = Content.data_sectors ~count:2 in
  check_bool "same tag" true (Content.equal d.(0) d.(1));
  let d2 = Content.data_sectors ~count:1 in
  check_bool "fresh tag" false (Content.equal d.(0) d2.(0))

(* Scratch-pool reuse invariant: a released buffer comes back for the
   next same-length request, and it comes back indistinguishable from a
   fresh [Array.make len Zero] — stale contents must never leak into
   the next request. *)
let test_content_scratch_reuse () =
  let len = 48 in
  let before = Content.Scratch.free_count len in
  let a = Content.Scratch.alloc len in
  check_int "requested length" len (Array.length a);
  Array.iteri (fun i c -> a.(i) <- (ignore c; Content.Image i)) a;
  Content.Scratch.release a;
  check_int "released to pool" (before + 1) (Content.Scratch.free_count len);
  let b = Content.Scratch.alloc len in
  check_bool "same buffer reused" true (a == b);
  check_bool "contents wiped to Zero" true
    (Array.for_all (Content.equal Content.Zero) b);
  (* Distinct lengths live in distinct buckets. *)
  let c = Content.Scratch.alloc (len + 1) in
  check_bool "different length is a different buffer" true (c != b);
  Content.Scratch.release b;
  Content.Scratch.release c

(* --- Extent_map --- *)

let test_extent_set_get () =
  let m = Extent_map.create () in
  Extent_map.set m ~lba:10 ~count:5 "a";
  Alcotest.(check (option string)) "inside" (Some "a") (Extent_map.get m 12);
  Alcotest.(check (option string)) "before" None (Extent_map.get m 9);
  Alcotest.(check (option string)) "after" None (Extent_map.get m 15)

let test_extent_overwrite_splits () =
  let m = Extent_map.create () in
  Extent_map.set m ~lba:0 ~count:10 "a";
  Extent_map.set m ~lba:3 ~count:4 "b";
  Alcotest.(check (option string)) "left" (Some "a") (Extent_map.get m 2);
  Alcotest.(check (option string)) "mid" (Some "b") (Extent_map.get m 5);
  Alcotest.(check (option string)) "right" (Some "a") (Extent_map.get m 8);
  check_int "three extents" 3 (Extent_map.extent_count m);
  check_int "covered" 10 (Extent_map.covered m)

let test_extent_merge_adjacent () =
  let m = Extent_map.create () in
  Extent_map.set m ~lba:0 ~count:5 "a";
  Extent_map.set m ~lba:5 ~count:5 "a";
  check_int "merged" 1 (Extent_map.extent_count m);
  Extent_map.set m ~lba:10 ~count:5 "b";
  check_int "different value not merged" 2 (Extent_map.extent_count m)

let test_extent_clear_range () =
  let m = Extent_map.create () in
  Extent_map.set m ~lba:0 ~count:10 "a";
  Extent_map.clear_range m ~lba:4 ~count:2;
  Alcotest.(check (option string)) "hole" None (Extent_map.get m 5);
  Alcotest.(check (option string)) "left intact" (Some "a") (Extent_map.get m 3);
  Alcotest.(check (option string)) "right intact" (Some "a") (Extent_map.get m 6);
  check_int "covered" 8 (Extent_map.covered m)

let test_extent_fold_range () =
  let m = Extent_map.create () in
  Extent_map.set m ~lba:5 ~count:5 "a";
  Extent_map.set m ~lba:15 ~count:5 "b";
  let subs =
    Extent_map.fold_range m ~lba:0 ~count:25 ~init:[]
      ~f:(fun acc ~lba ~count v -> (lba, count, v) :: acc)
    |> List.rev
  in
  Alcotest.(check bool) "exact cover" true
    (subs
    = [ (0, 5, None); (5, 5, Some "a"); (10, 5, None); (15, 5, Some "b");
        (20, 5, None) ])

let prop_extent_clear_matches_reference =
  (* Interleaved set and clear operations agree with a naive model. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (triple bool (int_range 0 90) (int_range 1 10)))
  in
  QCheck.Test.make ~name:"extent map set/clear agrees with reference" ~count:200
    (QCheck.make gen) (fun ops ->
      let m = Extent_map.create () in
      let reference = Array.make 100 None in
      List.iteri
        (fun k (is_set, lba, count) ->
          let count = min count (100 - lba) in
          if count > 0 then
            if is_set then begin
              Extent_map.set m ~lba ~count k;
              for i = lba to lba + count - 1 do
                reference.(i) <- Some k
              done
            end
            else begin
              Extent_map.clear_range m ~lba ~count;
              for i = lba to lba + count - 1 do
                reference.(i) <- None
              done
            end)
        ops;
      let ok = ref true in
      for i = 0 to 99 do
        if Extent_map.get m i <> reference.(i) then ok := false
      done;
      (* covered must agree too *)
      let covered_ref =
        Array.fold_left (fun acc v -> if v = None then acc else acc + 1) 0 reference
      in
      !ok && Extent_map.covered m = covered_ref)

let prop_extent_covered_range_matches_reference =
  (* covered_range over arbitrary windows agrees with per-sector gets,
     whatever mix of set/clear built the map — the peer-serving guard
     ("does the local disk fully hold this chunk?") relies on it. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 40)
           (triple bool (int_range 0 90) (int_range 1 10)))
        (pair (int_range 0 99) (int_range 1 100)))
  in
  QCheck.Test.make ~name:"extent map covered_range agrees with reference"
    ~count:200 (QCheck.make gen)
    (fun (ops, (qlba, qcount)) ->
      let m = Extent_map.create () in
      let reference = Array.make 200 None in
      List.iteri
        (fun k (is_set, lba, count) ->
          if is_set then begin
            Extent_map.set m ~lba ~count k;
            for i = lba to lba + count - 1 do
              reference.(i) <- Some k
            done
          end
          else begin
            Extent_map.clear_range m ~lba ~count;
            for i = lba to lba + count - 1 do
              reference.(i) <- None
            done
          end)
        ops;
      let expect = ref 0 in
      for i = qlba to min 199 (qlba + qcount - 1) do
        if reference.(i) <> None then incr expect
      done;
      Extent_map.covered_range m ~lba:qlba ~count:qcount = !expect)

let prop_extent_matches_reference =
  (* Random sequence of set operations agrees with a naive array model. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (triple (int_range 0 90) (int_range 1 10) (int_range 0 3)))
  in
  QCheck.Test.make ~name:"extent map agrees with array reference" ~count:200
    (QCheck.make gen) (fun ops ->
      let m = Extent_map.create () in
      let reference = Array.make 100 None in
      List.iter
        (fun (lba, count, v) ->
          let count = min count (100 - lba) in
          if count > 0 then begin
            Extent_map.set m ~lba ~count v;
            for i = lba to lba + count - 1 do
              reference.(i) <- Some v
            done
          end)
        ops;
      let ok = ref true in
      for i = 0 to 99 do
        if Extent_map.get m i <> reference.(i) then ok := false
      done;
      !ok)

(* Shared generator for extent-map op sequences over a 100-LBA domain:
   (is_set, lba, count, value). *)
let extent_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (quad bool (int_range 0 90) (int_range 1 10) (int_range 0 3)))

let apply_extent_ops ops =
  let m = Extent_map.create () in
  let reference = Array.make 100 None in
  List.iter
    (fun (is_set, lba, count, v) ->
      let count = min count (100 - lba) in
      if count > 0 then
        if is_set then begin
          Extent_map.set m ~lba ~count v;
          for i = lba to lba + count - 1 do
            reference.(i) <- Some v
          done
        end
        else begin
          Extent_map.clear_range m ~lba ~count;
          for i = lba to lba + count - 1 do
            reference.(i) <- None
          done
        end)
    ops;
  (m, reference)

let prop_extent_insert_query_roundtrip =
  (* Every set is immediately observable over its whole range, and
     [covered] tracks the reference exactly after each op. *)
  QCheck.Test.make ~name:"extent map insert/query round-trip" ~count:200
    (QCheck.make extent_ops_gen) (fun ops ->
      let m = Extent_map.create () in
      let reference = Array.make 100 None in
      List.for_all
        (fun (is_set, lba, count, v) ->
          let count = min count (100 - lba) in
          count <= 0
          ||
          if is_set then begin
            Extent_map.set m ~lba ~count v;
            for i = lba to lba + count - 1 do
              reference.(i) <- Some v
            done;
            let ok = ref true in
            for i = lba to lba + count - 1 do
              if Extent_map.get m i <> Some v then ok := false
            done;
            !ok
            && Extent_map.covered m
               = Array.fold_left
                   (fun acc x -> if x = None then acc else acc + 1)
                   0 reference
          end
          else begin
            Extent_map.clear_range m ~lba ~count;
            for i = lba to lba + count - 1 do
              reference.(i) <- None
            done;
            let ok = ref true in
            for i = lba to lba + count - 1 do
              if Extent_map.get m i <> None then ok := false
            done;
            !ok
          end)
        ops)

let prop_extent_coalesced =
  (* Compactness invariant: the map never stores more extents than the
     number of maximal equal-value runs (adjacent equal extents always
     merge, no matter the op order that produced them). *)
  QCheck.Test.make ~name:"extent map stays maximally coalesced" ~count:200
    (QCheck.make extent_ops_gen) (fun ops ->
      let m, reference = apply_extent_ops ops in
      let runs = ref 0 in
      for i = 0 to 99 do
        if reference.(i) <> None && (i = 0 || reference.(i - 1) <> reference.(i))
        then incr runs
      done;
      Extent_map.extent_count m = !runs)

let prop_extent_fold_tiles_exactly =
  (* [fold_range] visits sub-ranges that tile the query exactly: in
     ascending order, no overlap, no gap, each uniform and agreeing with
     the reference; [covered] equals the mapped tiles' total. *)
  QCheck.Test.make ~name:"extent map fold_range tiles without overlap"
    ~count:200 (QCheck.make extent_ops_gen) (fun ops ->
      let m, reference = apply_extent_ops ops in
      let next = ref 0 and ok = ref true and mapped = ref 0 in
      Extent_map.fold_range m ~lba:0 ~count:100 ~init:()
        ~f:(fun () ~lba ~count v ->
          if lba <> !next || count <= 0 then ok := false;
          next := lba + count;
          if v <> None then mapped := !mapped + count;
          for i = lba to lba + count - 1 do
            if reference.(i) <> v then ok := false
          done);
      !ok && !next = 100 && !mapped = Extent_map.covered m)

(* --- Dma --- *)

let test_dma_alloc_find () =
  let dma = Dma.create () in
  let b = Dma.alloc dma ~sectors:4 in
  check_int "size" 4 (Array.length b.Dma.data);
  let found = Dma.find dma ~addr:b.Dma.addr in
  check_bool "same buffer" true (found == b)

let test_dma_distinct_addresses () =
  let dma = Dma.create () in
  let a = Dma.alloc dma ~sectors:1 and b = Dma.alloc dma ~sectors:1 in
  check_bool "distinct" true (a.Dma.addr <> b.Dma.addr)

let test_dma_read_write_bounds () =
  let dma = Dma.create () in
  let b = Dma.alloc dma ~sectors:4 in
  Dma.write b ~off:1 (Content.image_sectors ~lba:0 ~count:2);
  Alcotest.(check (array content_testable))
    "window" [| Content.Image 0; Content.Image 1 |]
    (Dma.read b ~off:1 ~count:2);
  Alcotest.check content_testable "untouched" Content.Zero (Dma.read b ~off:0 ~count:1).(0);
  check_bool "overflow raises" true
    (try
       Dma.write b ~off:3 (Content.image_sectors ~lba:0 ~count:2);
       false
     with Invalid_argument _ -> true)

let test_dma_free () =
  let dma = Dma.create () in
  let b = Dma.alloc dma ~sectors:1 in
  Dma.free dma b;
  check_bool "gone" true
    (try
       ignore (Dma.find dma ~addr:b.Dma.addr : Dma.buf);
       false
     with Invalid_argument _ -> true)

(* --- Disk --- *)

let small_hdd =
  { Disk.hdd_constellation2 with Disk.capacity_sectors = 1 lsl 20 }

let in_proc f =
  let sim = Sim.create () in
  let result = ref None in
  Sim.spawn_at sim Time.zero (fun () -> result := Some (f sim));
  Sim.run sim;
  Option.get !result

let test_disk_poke_peek_roundtrip () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         Disk.poke d ~lba:100 ~count:3 (Content.image_sectors ~lba:100 ~count:3);
         Alcotest.(check (array content_testable))
           "roundtrip"
           [| Content.Image 100; Content.Image 101; Content.Image 102 |]
           (Disk.peek d ~lba:100 ~count:3);
         Alcotest.check content_testable "outside" Content.Zero (Disk.sector d 99)))

let test_disk_mixed_content_runs () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         let data =
           Array.concat
             [ Content.image_sectors ~lba:10 ~count:2;
               Content.data_sectors ~count:2;
               [| Content.Zero |] ]
         in
         Disk.poke d ~lba:10 ~count:5 data;
         Alcotest.(check (array content_testable))
           "mixed preserved" data (Disk.peek d ~lba:10 ~count:5)))

let test_disk_sequential_faster_than_random () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         (* Sequential read immediately after a read ending at its start. *)
         let _ = Disk.read d ~lba:0 ~count:2048 in
         let seq = Disk.service_time d `Read ~lba:2048 ~count:2048 in
         let far = Disk.service_time d `Read ~lba:900_000 ~count:2048 in
         check_bool "sequential faster" true (seq < far)))

let test_disk_sequential_rate_calibration () =
  (* 1 MB sequential reads should sustain ~117 MB/s like the paper's
     bare-metal fio result (116.6 MB/s). *)
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         let start = Sim.clock () in
         let sectors_per_mb = 2048 in
         for i = 0 to 199 do
           ignore (Disk.read d ~lba:(i * sectors_per_mb) ~count:sectors_per_mb : Content.t array)
         done;
         let elapsed = Time.to_float_s (Time.diff (Sim.clock ()) start) in
         let rate_mb_s = 200.0 /. elapsed in
         check_bool
           (Printf.sprintf "rate %.1f MB/s in [110, 125]" rate_mb_s)
           true
           (rate_mb_s > 110.0 && rate_mb_s < 125.0)))

let test_disk_cache_hit_fast () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         let _ = Disk.read d ~lba:5000 ~count:8 in
         (* Re-read within the cached window: must be a fast cache hit -
            the mediator's dummy-sector trick depends on this. *)
         let hit = Disk.service_time d `Read ~lba:5003 ~count:1 in
         check_int "cache hit time" small_hdd.Disk.cache_hit_time hit))

let test_disk_write_no_cache_hit () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         let _ = Disk.read d ~lba:5000 ~count:8 in
         let w = Disk.service_time d `Write ~lba:5003 ~count:1 in
         check_bool "write not cached" true (w > small_hdd.Disk.cache_hit_time)))

let test_disk_stats () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         ignore (Disk.read d ~lba:0 ~count:4 : Content.t array);
         Disk.write d ~lba:100_000 ~count:8 (Content.data_sectors ~count:8);
         check_int "bytes read" (4 * 512) (Disk.bytes_read d);
         check_int "bytes written" (8 * 512) (Disk.bytes_written d);
         check_bool "seeks counted" true (Disk.seeks d >= 1);
         check_bool "busy time" true (Disk.busy_time d > 0)))

let test_disk_fill_with_image () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         Disk.fill_with_image d;
         Alcotest.check content_testable "first" (Content.Image 0) (Disk.sector d 0);
         Alcotest.check content_testable "last"
           (Content.Image (small_hdd.Disk.capacity_sectors - 1))
           (Disk.sector d (small_hdd.Disk.capacity_sectors - 1))))

let test_disk_bounds () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim small_hdd in
         check_bool "raises" true
           (try
              ignore (Disk.peek d ~lba:(small_hdd.Disk.capacity_sectors) ~count:1
                      : Content.t array);
              false
            with Invalid_argument _ -> true)))

let test_ssd_no_seek_penalty () =
  ignore
    (in_proc (fun sim ->
         let d = Disk.create sim { Disk.ssd_sata with Disk.capacity_sectors = 1 lsl 20 } in
         let _ = Disk.read d ~lba:0 ~count:8 in
         let near = Disk.service_time d `Read ~lba:8 ~count:8 in
         let far = Disk.service_time d `Read ~lba:900_000 ~count:8 in
         check_int "uniform latency" near far))

(* --- AHCI --- *)

type ahci_rig = {
  sim : Sim.t;
  mmio : Mmio.t;
  irq : Irq.t;
  ahci : Ahci.t;
  disk : Disk.t;
  dma : Dma.t;
  clb : int;
}

let ahci_rig () =
  let sim = Sim.create () in
  let mmio = Mmio.create () in
  let irq = Irq.create sim in
  let dma = Dma.create () in
  let disk = Disk.create sim small_hdd in
  let ahci =
    Ahci.create sim ~mmio ~base:0xF000_0000 ~dma ~disk ~irq ~irq_vec:11
  in
  let clb = Ahci.alloc_cmd_list ahci in
  (* Driver init: program CLB, enable interrupts, start the port. *)
  Mmio.write mmio (0xF000_0000 + Ahci.Regs.px_clb) clb;
  Mmio.write mmio (0xF000_0000 + Ahci.Regs.px_ie) 1;
  Mmio.write mmio (0xF000_0000 + Ahci.Regs.px_cmd) 1;
  { sim; mmio; irq; ahci; disk; dma; clb }

let ahci_reg rig off = Mmio.read rig.mmio (0xF000_0000 + off)
let ahci_wreg rig off v = Mmio.write rig.mmio (0xF000_0000 + off) v

(* Issue a command on slot 0 and wait for its IRQ. *)
let ahci_io rig fis buf_sectors =
  let buf = Dma.alloc rig.dma ~sectors:buf_sectors in
  let table =
    Ahci.alloc_cmd_table rig.ahci fis
      [ { Ahci.buf_addr = buf.Dma.addr; sectors = buf_sectors } ]
  in
  Ahci.set_slot rig.ahci ~clb:rig.clb ~slot:0 ~table_addr:table;
  let completed = ref false in
  Irq.register rig.irq ~vec:11 (fun () ->
      (* ISR: ack interrupt status. *)
      ahci_wreg rig Ahci.Regs.px_is 1;
      completed := true);
  ahci_wreg rig Ahci.Regs.px_ci 1;
  (buf, completed)

let test_ahci_read_flow () =
  let rig = ahci_rig () in
  Disk.poke rig.disk ~lba:1000 ~count:8 (Content.image_sectors ~lba:1000 ~count:8);
  let buf, completed =
    ahci_io rig { Ahci.Fis.op = Ahci.Fis.Read; lba = 1000; count = 8 } 8
  in
  Sim.run rig.sim;
  check_bool "irq fired" true !completed;
  Alcotest.(check (array content_testable))
    "data landed in buffer"
    (Content.image_sectors ~lba:1000 ~count:8)
    buf.Dma.data;
  check_int "ci cleared" 0 (ahci_reg rig Ahci.Regs.px_ci);
  check_int "one command" 1 (Ahci.commands_processed rig.ahci)

let test_ahci_write_flow () =
  let rig = ahci_rig () in
  let buf, completed =
    let buf = Dma.alloc rig.dma ~sectors:4 in
    Dma.write buf ~off:0 (Content.data_sectors ~count:4);
    let table =
      Ahci.alloc_cmd_table rig.ahci
        { Ahci.Fis.op = Ahci.Fis.Write; lba = 500; count = 4 }
        [ { Ahci.buf_addr = buf.Dma.addr; sectors = 4 } ]
    in
    Ahci.set_slot rig.ahci ~clb:rig.clb ~slot:0 ~table_addr:table;
    let completed = ref false in
    Irq.register rig.irq ~vec:11 (fun () ->
        ahci_wreg rig Ahci.Regs.px_is 1;
        completed := true);
    ahci_wreg rig Ahci.Regs.px_ci 1;
    (buf, completed)
  in
  Sim.run rig.sim;
  check_bool "irq" true !completed;
  Alcotest.(check (array content_testable))
    "disk holds written data" buf.Dma.data
    (Disk.peek rig.disk ~lba:500 ~count:4)

let test_ahci_busy_while_serving () =
  let rig = ahci_rig () in
  let _buf, _completed =
    ahci_io rig { Ahci.Fis.op = Ahci.Fis.Read; lba = 0; count = 64 } 64
  in
  (* Immediately after issue, TFD shows BSY and CI has the bit. *)
  check_bool "bsy" true
    (ahci_reg rig Ahci.Regs.px_tfd land Ahci.tfd_bsy <> 0);
  check_int "ci set" 1 (ahci_reg rig Ahci.Regs.px_ci);
  Sim.run rig.sim;
  check_bool "idle after" true
    (ahci_reg rig Ahci.Regs.px_tfd land Ahci.tfd_bsy = 0)

let test_ahci_no_irq_when_masked () =
  let rig = ahci_rig () in
  ahci_wreg rig Ahci.Regs.px_ie 0;
  let _buf, completed =
    ahci_io rig { Ahci.Fis.op = Ahci.Fis.Read; lba = 0; count = 1 } 1
  in
  Sim.run rig.sim;
  check_bool "no isr" false !completed;
  check_int "no irq raised" 0 (Ahci.irqs_raised rig.ahci);
  (* But the command still completed and PxIS is latched. *)
  check_int "completed" 1 (Ahci.commands_processed rig.ahci);
  check_int "is latched" 1 (ahci_reg rig Ahci.Regs.px_is)

let test_ahci_issue_while_stopped_rejected () =
  let rig = ahci_rig () in
  ahci_wreg rig Ahci.Regs.px_cmd 0;
  check_bool "raises" true
    (try
       ahci_wreg rig Ahci.Regs.px_ci 1;
       false
     with Invalid_argument _ -> true)

let test_ahci_multi_slot_fifo () =
  let rig = ahci_rig () in
  Disk.poke rig.disk ~lba:0 ~count:16 (Content.image_sectors ~lba:0 ~count:16);
  let buf0 = Dma.alloc rig.dma ~sectors:8 and buf1 = Dma.alloc rig.dma ~sectors:8 in
  let t0 =
    Ahci.alloc_cmd_table rig.ahci
      { Ahci.Fis.op = Ahci.Fis.Read; lba = 0; count = 8 }
      [ { Ahci.buf_addr = buf0.Dma.addr; sectors = 8 } ]
  and t1 =
    Ahci.alloc_cmd_table rig.ahci
      { Ahci.Fis.op = Ahci.Fis.Read; lba = 8; count = 8 }
      [ { Ahci.buf_addr = buf1.Dma.addr; sectors = 8 } ]
  in
  Ahci.set_slot rig.ahci ~clb:rig.clb ~slot:0 ~table_addr:t0;
  Ahci.set_slot rig.ahci ~clb:rig.clb ~slot:1 ~table_addr:t1;
  ahci_wreg rig Ahci.Regs.px_ci 3;
  Sim.run rig.sim;
  check_int "both done" 2 (Ahci.commands_processed rig.ahci);
  Alcotest.(check (array content_testable))
    "slot1 data" (Content.image_sectors ~lba:8 ~count:8) buf1.Dma.data

let test_ahci_mediator_can_rewrite_command () =
  (* The §3.2 trick: a mediator rewrites a command table to a 1-sector
     dummy read into its own buffer before the device sees it. *)
  let rig = ahci_rig () in
  Disk.poke rig.disk ~lba:0 ~count:64 (Content.image_sectors ~lba:0 ~count:64);
  let guest_buf = Dma.alloc rig.dma ~sectors:32 in
  let table_addr =
    Ahci.alloc_cmd_table rig.ahci
      { Ahci.Fis.op = Ahci.Fis.Read; lba = 0; count = 32 }
      [ { Ahci.buf_addr = guest_buf.Dma.addr; sectors = 32 } ]
  in
  Ahci.set_slot rig.ahci ~clb:rig.clb ~slot:0 ~table_addr;
  (* Mediator: retarget at a dummy buffer, 1 cached sector. *)
  let dummy = Dma.alloc rig.dma ~sectors:1 in
  let ct = Ahci.cmd_table rig.ahci ~addr:table_addr in
  ct.Ahci.fis <- { Ahci.Fis.op = Ahci.Fis.Read; lba = 0; count = 1 };
  ct.Ahci.prdt <- [ { Ahci.buf_addr = dummy.Dma.addr; sectors = 1 } ];
  ahci_wreg rig Ahci.Regs.px_ci 1;
  Sim.run rig.sim;
  Alcotest.check content_testable "dummy got the sector" (Content.Image 0)
    dummy.Dma.data.(0);
  Alcotest.check content_testable "guest buffer untouched" Content.Zero
    guest_buf.Dma.data.(0)

(* --- IDE --- *)

type ide_rig = {
  isim : Sim.t;
  pio : Pio.t;
  iirq : Irq.t;
  ide : Ide.t;
  idisk : Disk.t;
  idma : Dma.t;
}

let ide_rig () =
  let isim = Sim.create () in
  let pio = Pio.create () in
  let iirq = Irq.create isim in
  let idma = Dma.create () in
  let idisk = Disk.create isim small_hdd in
  let ide =
    Ide.create isim ~pio ~cmd_base:0x1F0 ~bm_base:0xC000 ~ctrl_base:0x3F6
      ~dma:idma ~disk:idisk ~irq:iirq ~irq_vec:14
  in
  { isim; pio; iirq; ide; idisk; idma }

let ide_issue rig ~op ~lba ~count ~prdt_addr =
  let p = rig.pio in
  Pio.outp p 0xC004 prdt_addr;
  Pio.outp p (0x1F0 + Ide.Regs.seccount) (count land 0xFF);
  Pio.outp p (0x1F0 + Ide.Regs.lba0) (lba land 0xFF);
  Pio.outp p (0x1F0 + Ide.Regs.lba1) ((lba lsr 8) land 0xFF);
  Pio.outp p (0x1F0 + Ide.Regs.lba2) ((lba lsr 16) land 0xFF);
  Pio.outp p (0x1F0 + Ide.Regs.device) (0xE0 lor ((lba lsr 24) land 0x0F));
  Pio.outp p (0x1F0 + Ide.Regs.command)
    (if op = `Read then Ide.cmd_read_dma else Ide.cmd_write_dma);
  (* Start bus master; bit 3 = direction. *)
  Pio.outp p 0xC000 (0x01 lor if op = `Read then 0x08 else 0x00)

let test_ide_read_flow () =
  let rig = ide_rig () in
  Disk.poke rig.idisk ~lba:2000 ~count:4 (Content.image_sectors ~lba:2000 ~count:4);
  let buf = Dma.alloc rig.idma ~sectors:4 in
  let prdt_addr =
    Ide.register_prdt rig.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = 4 } ]
  in
  let completed = ref false in
  Irq.register rig.iirq ~vec:14 (fun () ->
      (* ISR: read status, ack bus-master IRQ bit. *)
      ignore (Pio.inp rig.pio (0x1F0 + Ide.Regs.command) : int);
      Pio.outp rig.pio 0xC002 0x04;
      completed := true);
  ide_issue rig ~op:`Read ~lba:2000 ~count:4 ~prdt_addr;
  Sim.run rig.isim;
  check_bool "irq" true !completed;
  Alcotest.(check (array content_testable))
    "data" (Content.image_sectors ~lba:2000 ~count:4) buf.Dma.data

let test_ide_write_flow () =
  let rig = ide_rig () in
  let buf = Dma.alloc rig.idma ~sectors:2 in
  Dma.write buf ~off:0 (Content.data_sectors ~count:2);
  let prdt_addr =
    Ide.register_prdt rig.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = 2 } ]
  in
  ide_issue rig ~op:`Write ~lba:3000 ~count:2 ~prdt_addr;
  Sim.run rig.isim;
  Alcotest.(check (array content_testable))
    "disk data" buf.Dma.data
    (Disk.peek rig.idisk ~lba:3000 ~count:2)

let test_ide_busy_status () =
  let rig = ide_rig () in
  let buf = Dma.alloc rig.idma ~sectors:64 in
  let prdt_addr =
    Ide.register_prdt rig.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = 64 } ]
  in
  ide_issue rig ~op:`Read ~lba:0 ~count:64 ~prdt_addr;
  (* Let the execute process start (status turns BSY at its first step). *)
  Sim.run ~until:(Time.us 1) rig.isim;
  let st = Pio.inp rig.pio (0x1F0 + Ide.Regs.command) in
  check_bool "busy" true (st land Ide.status_bsy <> 0);
  Sim.run rig.isim;
  let st = Pio.inp rig.pio (0x1F0 + Ide.Regs.command) in
  check_bool "ready after" true (st land Ide.status_drdy <> 0);
  check_bool "not busy" true (st land Ide.status_bsy = 0)

let test_ide_nien_suppresses_irq () =
  let rig = ide_rig () in
  Pio.outp rig.pio 0x3F6 Ide.ctrl_nien;
  let buf = Dma.alloc rig.idma ~sectors:1 in
  let prdt_addr =
    Ide.register_prdt rig.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = 1 } ]
  in
  let fired = ref false in
  Irq.register rig.iirq ~vec:14 (fun () -> fired := true);
  ide_issue rig ~op:`Read ~lba:0 ~count:1 ~prdt_addr;
  Sim.run rig.isim;
  check_bool "suppressed" false !fired;
  check_int "completed anyway" 1 (Ide.commands_processed rig.ide);
  (* Polling path: bus-master status shows the IRQ bit. *)
  check_bool "bm irq bit" true (Pio.inp rig.pio 0xC002 land 0x04 <> 0)

let test_ide_lba_assembly () =
  (* Needs an LBA above 2^24 so the device-register nibble is exercised;
     use a big disk. *)
  let isim = Sim.create () in
  let pio = Pio.create () in
  let iirq = Irq.create isim in
  let idma = Dma.create () in
  let idisk = Disk.create isim Disk.hdd_constellation2 in
  let ide =
    Ide.create isim ~pio ~cmd_base:0x1F0 ~bm_base:0xC000 ~ctrl_base:0x3F6
      ~dma:idma ~disk:idisk ~irq:iirq ~irq_vec:14
  in
  let rig = { isim; pio; iirq; ide; idisk; idma } in
  let lba = 0x0A1B2C3 lor (0x5 lsl 24) in
  Disk.poke rig.idisk ~lba ~count:1 [| Content.Image 42 |];
  let buf = Dma.alloc rig.idma ~sectors:1 in
  let prdt_addr =
    Ide.register_prdt rig.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = 1 } ]
  in
  ide_issue rig ~op:`Read ~lba ~count:1 ~prdt_addr;
  Sim.run rig.isim;
  Alcotest.check content_testable "28-bit lba decoded" (Content.Image 42)
    buf.Dma.data.(0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "storage"
    [ ( "content",
        [ tc "equal" `Quick test_content_equal;
          tc "constructors" `Quick test_content_constructors;
          tc "scratch pool reuse" `Quick test_content_scratch_reuse ] );
      ( "extent_map",
        [ tc "set get" `Quick test_extent_set_get;
          tc "overwrite splits" `Quick test_extent_overwrite_splits;
          tc "merge adjacent" `Quick test_extent_merge_adjacent;
          tc "clear range" `Quick test_extent_clear_range;
          tc "fold range" `Quick test_extent_fold_range;
          QCheck_alcotest.to_alcotest prop_extent_matches_reference;
          QCheck_alcotest.to_alcotest prop_extent_clear_matches_reference;
          QCheck_alcotest.to_alcotest prop_extent_covered_range_matches_reference;
          QCheck_alcotest.to_alcotest prop_extent_insert_query_roundtrip;
          QCheck_alcotest.to_alcotest prop_extent_coalesced;
          QCheck_alcotest.to_alcotest prop_extent_fold_tiles_exactly ] );
      ( "dma",
        [ tc "alloc find" `Quick test_dma_alloc_find;
          tc "distinct addresses" `Quick test_dma_distinct_addresses;
          tc "read write bounds" `Quick test_dma_read_write_bounds;
          tc "free" `Quick test_dma_free ] );
      ( "disk",
        [ tc "poke peek roundtrip" `Quick test_disk_poke_peek_roundtrip;
          tc "mixed content runs" `Quick test_disk_mixed_content_runs;
          tc "sequential faster" `Quick test_disk_sequential_faster_than_random;
          tc "sequential rate calibration" `Quick test_disk_sequential_rate_calibration;
          tc "cache hit fast" `Quick test_disk_cache_hit_fast;
          tc "write no cache hit" `Quick test_disk_write_no_cache_hit;
          tc "stats" `Quick test_disk_stats;
          tc "fill with image" `Quick test_disk_fill_with_image;
          tc "bounds" `Quick test_disk_bounds;
          tc "ssd uniform latency" `Quick test_ssd_no_seek_penalty ] );
      ( "ahci",
        [ tc "read flow" `Quick test_ahci_read_flow;
          tc "write flow" `Quick test_ahci_write_flow;
          tc "busy while serving" `Quick test_ahci_busy_while_serving;
          tc "irq masked" `Quick test_ahci_no_irq_when_masked;
          tc "issue while stopped" `Quick test_ahci_issue_while_stopped_rejected;
          tc "multi slot fifo" `Quick test_ahci_multi_slot_fifo;
          tc "mediator rewrite trick" `Quick test_ahci_mediator_can_rewrite_command ] );
      ( "ide",
        [ tc "read flow" `Quick test_ide_read_flow;
          tc "write flow" `Quick test_ide_write_flow;
          tc "busy status" `Quick test_ide_busy_status;
          tc "nien suppresses irq" `Quick test_ide_nien_suppresses_irq;
          tc "lba assembly" `Quick test_ide_lba_assembly ] ) ]
