(* Golden-scalar regression tests: print the key figures of selected
   experiments at a fixed seed in a stable format. Dune diffs the output
   against the checked-in .expected files; after an intentional physics
   change, refresh them with `dune promote` (see test/README.md). *)

module Time = Bmcast_engine.Time
module Fig04 = Bmcast_experiments.Fig04_startup
module Fig14 = Bmcast_experiments.Fig14_moderation

let fig04 () =
  (* Small image so the regression stays fast; the ordering claims the
     paper makes (BMcast beats everything but bare metal post-firmware)
     hold at 2 GB too. *)
  let results = Fig04.measure ~image_gb:2 () in
  List.iter
    (fun r ->
      Printf.printf "%-12s firmware %8.3f  pre_os %8.3f  os_boot %8.3f  post_fw %8.3f\n"
        r.Fig04.label r.Fig04.firmware r.Fig04.pre_os r.Fig04.os_boot
        r.Fig04.total_post_firmware)
    results;
  let find l = List.find (fun r -> r.Fig04.label = l) results in
  Printf.printf "speedup_vs_image_copy_post_fw %.4f\n"
    ((find "Image Copy").Fig04.total_post_firmware
    /. (find "BMcast").Fig04.total_post_firmware)

let fig14 () =
  (* Three-point subset of the moderation sweep: the two extremes and a
     midpoint — enough to pin the moderation physics. *)
  let intervals = [ ("1s", Time.s 1); ("1ms", Time.ms 1); ("full-speed", 0) ] in
  List.iter
    (fun guest_op ->
      let tag = match guest_op with `Read -> "read" | `Write -> "write" in
      List.iter
        (fun p ->
          Printf.printf "%s %-10s guest %8.2f MB/s  vmm %8.2f MB/s\n" tag
            p.Fig14.interval_label p.Fig14.guest_mb_s p.Fig14.vmm_mb_s)
        (Fig14.measure ~intervals ~guest_op ()))
    [ `Read; `Write ]

let () =
  match Sys.argv with
  | [| _; "fig04" |] -> fig04 ()
  | [| _; "fig14" |] -> fig14 ()
  | _ ->
    prerr_endline "usage: golden (fig04|fig14)";
    exit 2
