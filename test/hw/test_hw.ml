(* Tests for the hardware substrate. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mmio = Bmcast_hw.Mmio
module Pio = Bmcast_hw.Pio
module Irq = Bmcast_hw.Irq
module Cpu = Bmcast_hw.Cpu
module Tlb = Bmcast_hw.Tlb
module Firmware = Bmcast_hw.Firmware
module Memmap = Bmcast_hw.Memmap
module Pci = Bmcast_hw.Pci

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_reg = Alcotest.(check int)

(* --- Mmio --- *)

let mem_device () =
  let store = Hashtbl.create 8 in
  let handler =
    { Mmio.read = (fun off -> Option.value (Hashtbl.find_opt store off) ~default:0);
      write = (fun off v -> Hashtbl.replace store off v) }
  in
  (store, handler)

let test_mmio_read_write () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0x1000 ~size:0x100 h;
  Mmio.write m 0x1010 7;
  check_reg "readback" 7 (Mmio.read m 0x1010);
  check_reg "other offset" 0 (Mmio.read m 0x1020)

let test_mmio_unmapped_raises () =
  let m = Mmio.create () in
  check_bool "raises" true
    (try
       ignore (Mmio.read m 0x5000 : int);
       false
     with Invalid_argument _ -> true)

let test_mmio_overlap_rejected () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0x1000 ~size:0x100 h;
  check_bool "overlap" true
    (try
       Mmio.map m ~base:0x10F0 ~size:0x100 h;
       false
     with Invalid_argument _ -> true)

let test_mmio_map_unmap_remap () =
  let m = Mmio.create () in
  let store_a, h_a = mem_device () in
  let _, h_b = mem_device () in
  Mmio.map m ~base:0x1000 ~size:0x100 h_a;
  Mmio.write m 0x1010 41;
  check_reg "first mapping serves" 41 (Mmio.read m 0x1010);
  Mmio.unmap m ~base:0x1000;
  check_bool "unmapped region gone" true
    (try
       ignore (Mmio.read m 0x1010 : int);
       false
     with Invalid_argument _ -> true);
  (* Remap the same base with a different device: the new handler must
     serve, with no residue from the old region. *)
  Mmio.map m ~base:0x1000 ~size:0x100 h_b;
  check_reg "remapped device is fresh" 0 (Mmio.read m 0x1010);
  Mmio.write m 0x1010 7;
  check_reg "remapped device serves" 7 (Mmio.read m 0x1010);
  check_int "old device untouched by remap write" 41
    (Option.value (Hashtbl.find_opt store_a 0x10) ~default:0);
  (* Unmapping a base that was never mapped (or already unmapped) is a
     teardown bug, not a no-op. *)
  check_bool "unmap unknown base raises" true
    (try
       Mmio.unmap m ~base:0x9000;
       false
     with Invalid_argument _ -> true);
  Mmio.unmap m ~base:0x1000;
  check_bool "double unmap raises" true
    (try
       Mmio.unmap m ~base:0x1000;
       false
     with Invalid_argument _ -> true)

let test_mmio_interpose_observes () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0x1000 ~size:0x100 h;
  let seen = ref [] in
  Mmio.interpose m ~base:0x1000
    { on_read =
        (fun ~next off ->
          seen := `R off :: !seen;
          next off);
      on_write =
        (fun ~next off v ->
          seen := `W off :: !seen;
          next off v) };
  Mmio.write m 0x1004 9;
  check_reg "forwarded" 9 (Mmio.read m 0x1004);
  Alcotest.(check int) "two traps" 2 (Mmio.trapped_accesses m);
  Alcotest.(check bool) "order" true (!seen = [ `R 4; `W 4 ])

let test_mmio_interpose_can_answer () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0 ~size:0x10 h;
  Mmio.interpose m ~base:0
    { on_read = (fun ~next:_ _ -> 0xFF);
      on_write = (fun ~next:_ _ _ -> () (* swallow *)) };
  Mmio.write m 0x0 1;
  check_reg "emulated read" 0xFF (Mmio.read m 0x0)

let test_mmio_devirtualize () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0 ~size:0x10 h;
  Mmio.interpose m ~base:0
    { on_read = (fun ~next off -> next off);
      on_write = (fun ~next off v -> next off v) };
  Mmio.write m 0x0 1;
  let traps_before = Mmio.trapped_accesses m in
  Mmio.remove_interposer m ~base:0;
  Mmio.write m 0x0 2;
  ignore (Mmio.read m 0x0 : int);
  check_int "zero traps after devirt" traps_before (Mmio.trapped_accesses m);
  check_reg "direct access works" 2 (Mmio.read m 0x0)

let test_mmio_double_interpose_rejected () =
  let m = Mmio.create () in
  let _, h = mem_device () in
  Mmio.map m ~base:0 ~size:0x10 h;
  let ix =
    { Mmio.on_read = (fun ~next off -> next off);
      on_write = (fun ~next off v -> next off v) }
  in
  Mmio.interpose m ~base:0 ix;
  check_bool "second rejected" true
    (try
       Mmio.interpose m ~base:0 ix;
       false
     with Invalid_argument _ -> true)

(* --- Pio --- *)

let test_pio_basic () =
  let p = Pio.create () in
  let regs = Array.make 8 0 in
  Pio.map p ~base:0x1F0 ~count:8
    { Pio.inp = (fun off -> regs.(off)); outp = (fun off v -> regs.(off) <- v) };
  Pio.outp p 0x1F2 5;
  check_int "readback" 5 (Pio.inp p 0x1F2);
  check_int "reg array" 5 regs.(2)

let test_pio_interpose_and_remove () =
  let p = Pio.create () in
  let regs = Array.make 4 0 in
  Pio.map p ~base:0 ~count:4
    { Pio.inp = (fun off -> regs.(off)); outp = (fun off v -> regs.(off) <- v) };
  Pio.interpose p ~base:0
    { on_in = (fun ~next off -> next off + 100);
      on_out = (fun ~next off v -> next off (v * 2)) };
  Pio.outp p 1 3;
  check_int "doubled" 106 (Pio.inp p 1);
  Pio.remove_interposer p ~base:0;
  check_int "direct" 6 (Pio.inp p 1);
  check_int "traps counted" 2 (Pio.trapped_accesses p)

(* --- Irq --- *)

let test_irq_delivery () =
  let sim = Sim.create () in
  let irq = Irq.create sim in
  let fired_at = ref Time.zero in
  Irq.register irq ~vec:14 (fun () -> fired_at := Sim.now sim);
  Sim.spawn_at sim Time.zero (fun () ->
      Sim.sleep (Time.ms 1);
      Irq.raise_irq irq ~vec:14);
  Sim.run sim;
  check_int "delivered after latency"
    (Time.add (Time.ms 1) Irq.delivery_latency)
    !fired_at;
  check_int "count" 1 (Irq.delivered irq ~vec:14)

let test_irq_spurious () =
  let sim = Sim.create () in
  let irq = Irq.create sim in
  Irq.raise_irq irq ~vec:99;
  Sim.run sim;
  check_int "spurious counted" 1 (Irq.spurious irq)

let test_irq_unregister () =
  let sim = Sim.create () in
  let irq = Irq.create sim in
  Irq.register irq ~vec:5 (fun () -> Alcotest.fail "should not fire");
  Irq.unregister irq ~vec:5;
  Irq.raise_irq irq ~vec:5;
  Sim.run sim;
  check_int "spurious" 1 (Irq.spurious irq)

(* --- Cpu --- *)

let test_cpu_run_consumes_time () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  Sim.spawn_at sim Time.zero (fun () ->
      Cpu.run (Cpu.core cpu 0) (Time.ms 5);
      check_int "elapsed" (Time.ms 5) (Sim.clock ()));
  Sim.run sim

let test_cpu_preemption_stalls () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  Cpu.enable_interference cpu;
  let c = Cpu.core cpu 0 in
  (* Steal the core from 2 ms to 6 ms. *)
  Sim.spawn_at sim (Time.ms 2) (fun () ->
      Cpu.set_unavailable_until c (Time.ms 6));
  let finished_at = ref Time.zero in
  Sim.spawn_at sim Time.zero (fun () ->
      Cpu.run c (Time.ms 5);
      finished_at := Sim.clock ());
  Sim.run sim;
  (* 5 ms of work + ~4 ms stall; slice granularity may add <= 1 ms. *)
  check_bool "stalled" true (!finished_at >= Time.ms 9);
  check_bool "not over-stalled" true (!finished_at <= Time.ms 11);
  check_bool "stall accounted" true (Cpu.stall_time c >= Time.ms 3)

let test_cpu_unavailable_blocks_start () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  Cpu.enable_interference cpu;
  let c = Cpu.core cpu 0 in
  Cpu.set_unavailable_until c (Time.ms 4);
  let finished_at = ref Time.zero in
  Sim.spawn_at sim Time.zero (fun () ->
      Cpu.run c (Time.ms 1);
      finished_at := Sim.clock ());
  Sim.run sim;
  check_int "waited for availability" (Time.ms 5) !finished_at

let test_cpu_exit_accounting () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  Cpu.record_exit cpu Cpu.Mmio ~cost:(Time.us 1);
  Cpu.record_exit cpu Cpu.Mmio ~cost:(Time.us 1);
  Cpu.record_exit cpu Cpu.Cpuid ~cost:(Time.us 2);
  check_int "mmio exits" 2 (Cpu.exits cpu Cpu.Mmio);
  check_int "total" 3 (Cpu.total_exits cpu);
  check_int "time" (Time.us 4) (Cpu.exit_time cpu);
  Cpu.reset_exit_counters cpu;
  check_int "reset" 0 (Cpu.total_exits cpu)

let test_cpu_bad_core () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  check_bool "raises" true
    (try
       ignore (Cpu.core cpu 2 : Cpu.core);
       false
     with Invalid_argument _ -> true)

(* --- Tlb --- *)

let test_tlb_native_no_slowdown () =
  Alcotest.(check (float 1e-9)) "native" 1.0 (Tlb.slowdown Tlb.Native ~mem_intensity:1.0)

let test_tlb_nested_scales_with_intensity () =
  let low = Tlb.slowdown Tlb.Nested_paging ~mem_intensity:0.1 in
  let high = Tlb.slowdown Tlb.Nested_paging ~mem_intensity:1.0 in
  check_bool "monotone" true (low < high);
  Alcotest.(check (float 1e-9)) "nested tax" 1.035 high

let test_tlb_host_pollution_worse () =
  let bmcast = Tlb.slowdown Tlb.Nested_paging ~mem_intensity:1.0 in
  let kvm = Tlb.slowdown Tlb.Nested_paging_host ~mem_intensity:1.0 in
  check_bool "kvm worse" true (kvm > bmcast);
  Alcotest.(check (float 1e-9)) "paper 35%" 1.35 kvm

let test_tlb_bad_intensity () =
  check_bool "raises" true
    (try
       ignore (Tlb.slowdown Tlb.Native ~mem_intensity:1.5 : float);
       false
     with Invalid_argument _ -> true)

(* --- Firmware --- *)

let test_firmware_post_time () =
  let sim = Sim.create () in
  Sim.spawn_at sim Time.zero (fun () ->
      Firmware.post Firmware.default;
      check_int "133s POST" (Time.s 133) (Sim.clock ()));
  Sim.run sim

let test_firmware_pxe_time_scales () =
  let p = Firmware.default in
  let small = Firmware.pxe_load_span p ~bytes_len:1_000_000 in
  let large = Firmware.pxe_load_span p ~bytes_len:100_000_000 in
  (* Payload transfer time (beyond the fixed DHCP handshake) scales
     linearly with size. *)
  let payload t = Time.diff t p.Firmware.pxe_dhcp_time in
  check_int "linear in size" (Time.mul (payload small) 100) (payload large)

(* --- Memmap --- *)

let test_memmap_reserve_release () =
  let mm = Memmap.create ~total_bytes:(1 lsl 30) in
  let before = Memmap.usable_bytes mm in
  let vmm = Memmap.reserve_vmm mm ~size:(128 * 1024 * 1024) in
  check_int "reserved size" (128 * 1024 * 1024) (Memmap.vmm_reserved_bytes mm);
  check_int "usable shrank" (before - (128 * 1024 * 1024)) (Memmap.usable_bytes mm);
  check_bool "region kind" true (Memmap.kind_at mm vmm.Memmap.base = Memmap.Vmm_reserved);
  Memmap.release_vmm mm;
  check_int "restored" before (Memmap.usable_bytes mm);
  check_int "nothing reserved" 0 (Memmap.vmm_reserved_bytes mm)

let test_memmap_reserve_too_big () =
  let mm = Memmap.create ~total_bytes:(1 lsl 20) in
  check_bool "raises" true
    (try
       ignore (Memmap.reserve_vmm mm ~size:(1 lsl 30) : Memmap.entry);
       false
     with Invalid_argument _ -> true)

let test_memmap_entries_sorted_coalesced () =
  let mm = Memmap.create ~total_bytes:(1 lsl 30) in
  ignore (Memmap.reserve_vmm mm ~size:4096 : Memmap.entry);
  let es = Memmap.entries mm in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Memmap.base + a.Memmap.size <= b.Memmap.base && sorted rest
    | _ -> true
  in
  check_bool "sorted non-overlapping" true (sorted es)

(* --- Pci --- *)

let nic_dev bdf =
  { Pci.bdf; vendor_id = 0x8086; device_id = 0x10D3; class_code = 0x020000;
    bars = [ (0xF000_0000, 0x20000) ] }

let test_pci_scan_order () =
  let p = Pci.create () in
  Pci.add p (nic_dev { Pci.bus = 1; dev = 0; fn = 0 });
  Pci.add p (nic_dev { Pci.bus = 0; dev = 3; fn = 0 });
  let bdfs = List.map (fun d -> d.Pci.bdf) (Pci.scan p) in
  Alcotest.(check bool) "sorted" true
    (bdfs = [ { Pci.bus = 0; dev = 3; fn = 0 }; { Pci.bus = 1; dev = 0; fn = 0 } ])

let test_pci_hide_unhide () =
  let p = Pci.create () in
  let bdf = { Pci.bus = 0; dev = 3; fn = 0 } in
  Pci.add p (nic_dev bdf);
  check_bool "visible" true (Pci.find p bdf <> None);
  Pci.hide p bdf;
  check_bool "hidden from find" true (Pci.find p bdf = None);
  check_int "hidden from scan" 0 (List.length (Pci.scan p));
  Pci.unhide p bdf;
  check_bool "visible again" true (Pci.find p bdf <> None)

let test_pci_duplicate_rejected () =
  let p = Pci.create () in
  let bdf = { Pci.bus = 0; dev = 1; fn = 0 } in
  Pci.add p (nic_dev bdf);
  check_bool "raises" true
    (try
       Pci.add p (nic_dev bdf);
       false
     with Invalid_argument _ -> true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "hw"
    [ ( "mmio",
        [ tc "read write" `Quick test_mmio_read_write;
          tc "unmapped raises" `Quick test_mmio_unmapped_raises;
          tc "overlap rejected" `Quick test_mmio_overlap_rejected;
          tc "map/unmap/remap round-trip" `Quick test_mmio_map_unmap_remap;
          tc "interpose observes" `Quick test_mmio_interpose_observes;
          tc "interpose can answer" `Quick test_mmio_interpose_can_answer;
          tc "devirtualize" `Quick test_mmio_devirtualize;
          tc "double interpose rejected" `Quick test_mmio_double_interpose_rejected ] );
      ( "pio",
        [ tc "basic" `Quick test_pio_basic;
          tc "interpose and remove" `Quick test_pio_interpose_and_remove ] );
      ( "irq",
        [ tc "delivery" `Quick test_irq_delivery;
          tc "spurious" `Quick test_irq_spurious;
          tc "unregister" `Quick test_irq_unregister ] );
      ( "cpu",
        [ tc "run consumes time" `Quick test_cpu_run_consumes_time;
          tc "preemption stalls" `Quick test_cpu_preemption_stalls;
          tc "unavailable blocks start" `Quick test_cpu_unavailable_blocks_start;
          tc "exit accounting" `Quick test_cpu_exit_accounting;
          tc "bad core" `Quick test_cpu_bad_core ] );
      ( "tlb",
        [ tc "native" `Quick test_tlb_native_no_slowdown;
          tc "nested scales" `Quick test_tlb_nested_scales_with_intensity;
          tc "host pollution worse" `Quick test_tlb_host_pollution_worse;
          tc "bad intensity" `Quick test_tlb_bad_intensity ] );
      ( "firmware",
        [ tc "post time" `Quick test_firmware_post_time;
          tc "pxe scales" `Quick test_firmware_pxe_time_scales ] );
      ( "memmap",
        [ tc "reserve release" `Quick test_memmap_reserve_release;
          tc "reserve too big" `Quick test_memmap_reserve_too_big;
          tc "entries sorted" `Quick test_memmap_entries_sorted_coalesced ] );
      ( "pci",
        [ tc "scan order" `Quick test_pci_scan_order;
          tc "hide unhide" `Quick test_pci_hide_unhide;
          tc "duplicate rejected" `Quick test_pci_duplicate_rejected ] ) ]
