(* Unit, property, and end-to-end tests for the observability layer:
   the Stats collectors, the deterministic tracer and its Chrome/JSONL
   exports, the metrics registry, and the contract that identical seeds
   produce byte-identical trace files while a disabled tracer leaves
   the simulation's timing untouched. *)

module Stats = Bmcast_obs.Stats
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics
module Profile = Bmcast_obs.Profile
module Analytics = Bmcast_obs.Analytics
module Timeseries = Bmcast_obs.Timeseries
module Watchdog = Bmcast_obs.Watchdog
module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Block_io = Bmcast_guest.Block_io
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm
module Fault = Bmcast_faults.Fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in output" what needle

(* --- Stats: empty-collector contracts --- *)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  check_int "count" 0 (Stats.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.Histogram.mean h);
  check_bool "min is +inf" true (Stats.Histogram.min h = infinity);
  check_bool "max is -inf" true (Stats.Histogram.max h = neg_infinity);
  expect_invalid_arg "percentile on empty" (fun () ->
      Stats.Histogram.percentile h 50.0);
  expect_invalid_arg "median on empty" (fun () -> Stats.Histogram.median h);
  Alcotest.(check (option (float 0.0)))
    "percentile_opt" None
    (Stats.Histogram.percentile_opt h 50.0);
  Stats.Histogram.add h 7.0;
  Alcotest.(check (option (float 0.0)))
    "percentile_opt non-empty" (Some 7.0)
    (Stats.Histogram.percentile_opt h 99.0);
  Stats.Histogram.clear h;
  check_int "count after clear" 0 (Stats.Histogram.count h);
  expect_invalid_arg "percentile after clear" (fun () ->
      Stats.Histogram.percentile h 0.0)

let test_percentile_interpolation () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 10.0; 0.0 ];
  (* rank = p/100 * (n-1); p=25 over [0;10] interpolates to 2.5 *)
  Alcotest.(check (float 1e-9)) "p25" 2.5 (Stats.Histogram.percentile h 25.0);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0
    (Stats.Histogram.percentile h 100.0)

let test_percentile_edges () =
  (* Single sample: every percentile is that sample. *)
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 3.25;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single sample p%g" p)
        3.25
        (Stats.Histogram.percentile h p))
    [ 0.0; 50.0; 100.0 ];
  (* p=0 / p=100 pin the exact extremes, and out-of-range p clamps. *)
  List.iter (Stats.Histogram.add h) [ -2.0; 7.5 ];
  Alcotest.(check (float 0.0)) "p0 = min" (-2.0)
    (Stats.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 = max" 7.5
    (Stats.Histogram.percentile h 100.0);
  Alcotest.(check (float 0.0)) "p<0 clamps to min" (-2.0)
    (Stats.Histogram.percentile h (-10.0));
  Alcotest.(check (float 0.0)) "p>100 clamps to max" 7.5
    (Stats.Histogram.percentile h 250.0)

(* Past [exact_limit] the collector folds its samples into the
   log-bucketed form: summary moments and the extremes stay exact, the
   interior percentiles pick up the bounded relative error, and [clear]
   returns it to exact mode (including being able to accept samples
   again — the spill frees the sample array). *)
let test_histogram_spill () =
  let h = Stats.Histogram.create ~exact_limit:4 () in
  for i = 1 to 10 do
    Stats.Histogram.add h (float_of_int i)
  done;
  check_bool "spilled" false (Stats.Histogram.is_exact h);
  check_int "count survives spill" 10 (Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean exact after spill" 5.5
    (Stats.Histogram.mean h);
  Alcotest.(check (float 0.0)) "min exact" 1.0 (Stats.Histogram.min h);
  Alcotest.(check (float 0.0)) "max exact" 10.0 (Stats.Histogram.max h);
  Alcotest.(check (float 0.0)) "p0 exact" 1.0
    (Stats.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 exact" 10.0
    (Stats.Histogram.percentile h 100.0);
  let p50 = Stats.Histogram.percentile h 50.0 in
  check_bool "p50 within bucket error" true
    (Float.abs (p50 -. 5.5) <= Stats.Bounded.max_relative_error *. 5.5);
  Stats.Histogram.clear h;
  check_bool "exact again after clear" true (Stats.Histogram.is_exact h);
  check_int "empty after clear" 0 (Stats.Histogram.count h);
  Stats.Histogram.add h 2.0;
  Alcotest.(check (float 0.0)) "accepts samples after clear" 2.0
    (Stats.Histogram.percentile h 50.0);
  expect_invalid_arg "exact_limit 0" (fun () ->
      Stats.Histogram.create ~exact_limit:0 ())

(* Bucketed percentiles vs ground truth: for positive in-range samples
   every percentile of the spilled histogram is within
   [Bounded.max_relative_error] of the exact histogram's answer (both
   interpolate with the same rank convention, and each order statistic's
   representative carries at most that relative error). *)
let prop_bucketed_percentile_error =
  QCheck.Test.make ~count:400
    ~name:"bucketed percentile within 1% of exact"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 120) (float_range 1e-3 1e6))
        (int_range 0 100))
    (fun (xs, p) ->
      let exact = Stats.Histogram.create () in
      let spilled = Stats.Histogram.create ~exact_limit:1 () in
      List.iter
        (fun x ->
          Stats.Histogram.add exact x;
          Stats.Histogram.add spilled x)
        xs;
      (List.length xs < 2 || not (Stats.Histogram.is_exact spilled))
      &&
      let p = float_of_int p in
      let want = Stats.Histogram.percentile exact p in
      let got = Stats.Histogram.percentile spilled p in
      Float.abs (got -. want)
      <= (Stats.Bounded.max_relative_error *. want) +. 1e-12)

let prop_percentile_bounds =
  QCheck.Test.make ~count:500
    ~name:"percentile stays within [min,max] and is monotone in p"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
        (pair (int_range 0 100) (int_range 0 100)))
    (fun (xs, (a, b)) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let lo = List.fold_left Stdlib.min infinity xs in
      let hi = List.fold_left Stdlib.max neg_infinity xs in
      let p, q = if a <= b then (a, b) else (b, a) in
      let vp = Stats.Histogram.percentile h (float_of_int p) in
      let vq = Stats.Histogram.percentile h (float_of_int q) in
      Stats.Histogram.percentile h 0.0 = lo
      && Stats.Histogram.percentile h 100.0 = hi
      && vp >= lo && vq <= hi && vp <= vq)

let prop_welford_matches_two_pass =
  QCheck.Test.make ~count:300
    ~name:"Welford mean/stddev match the two-pass computation"
    QCheck.(list_of_size Gen.(int_range 2 60) (float_range (-1e3) 1e3))
    (fun xs ->
      let m = Stats.Mean.create () in
      List.iter (Stats.Mean.add m) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      let exact = sqrt var in
      Float.abs (Stats.Mean.mean m -. mean) <= 1e-9 *. (1.0 +. Float.abs mean)
      && Float.abs (Stats.Mean.stddev m -. exact) <= 1e-6 *. (1.0 +. exact))

let test_bucket_mean_skips_gaps () =
  let s = Stats.Series.create () in
  Stats.Series.add s 100 1.0;
  Stats.Series.add s 150 3.0;
  Stats.Series.add s 2_500 10.0;
  (* bucket [1000,2000) holds no samples and must be absent, not 0 *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "buckets"
    [ (0, 2.0); (2000, 10.0) ]
    (Stats.Series.bucket_mean s ~width:1000);
  expect_invalid_arg "width 0" (fun () -> Stats.Series.bucket_mean s ~width:0)

let test_per_window_zero_fills_gaps () =
  let r = Stats.Rate.create () in
  Alcotest.(check (list (pair int (float 0.0))))
    "empty rate" []
    (Stats.Rate.per_window r ~width:1000);
  Stats.Rate.add r 500 4.0;
  Stats.Rate.add r 3_200 8.0;
  (* 1000 ns windows = 1e-6 s, so rate = weight * 1e6; the two empty
     windows in between are present with rate 0 (contrast with
     Series.bucket_mean). *)
  Alcotest.(check (list (pair int (float 1e-3))))
    "windows"
    [ (0, 4e6); (1000, 0.0); (2000, 0.0); (3000, 8e6) ]
    (Stats.Rate.per_window r ~width:1000);
  Alcotest.(check (float 1e-9)) "total" 12.0 (Stats.Rate.total r);
  check_int "events" 2 (Stats.Rate.count r);
  expect_invalid_arg "width -1" (fun () -> Stats.Rate.per_window r ~width:(-1))

(* Windows are half-open [k*width, (k+1)*width): a sample exactly on a
   boundary opens the next window, and negative timestamps land in
   floor-division windows (no double-width bucket straddling zero). *)
let test_window_boundaries () =
  let r = Stats.Rate.create () in
  Stats.Rate.add r 999 1.0;
  Stats.Rate.add r 1000 2.0;
  Alcotest.(check (list (pair int (float 1e-3))))
    "boundary sample opens the next window"
    [ (0, 1e6); (1000, 2e6) ]
    (Stats.Rate.per_window r ~width:1000);
  let s = Stats.Series.create () in
  Stats.Series.add s 1000 5.0;
  Stats.Series.add s 1999 7.0;
  Stats.Series.add s 2000 9.0;
  Alcotest.(check (list (pair int (float 1e-9))))
    "bucket_mean half-open edges"
    [ (1000, 6.0); (2000, 9.0) ]
    (Stats.Series.bucket_mean s ~width:1000);
  let neg = Stats.Series.create () in
  Stats.Series.add neg (-1) 4.0;
  Stats.Series.add neg (-1000) 2.0;
  Stats.Series.add neg 0 6.0;
  Alcotest.(check (list (pair int (float 1e-9))))
    "negative timestamps use floor windows"
    [ (-1000, 3.0); (0, 6.0) ]
    (Stats.Series.bucket_mean neg ~width:1000);
  let rneg = Stats.Rate.create () in
  Stats.Rate.add rneg (-1) 1.0;
  Alcotest.(check (list (pair int (float 1e-3))))
    "negative-only rate emits its own window"
    [ (-1000, 1e6) ]
    (Stats.Rate.per_window rneg ~width:1000)

(* --- Trace: recording semantics --- *)

let test_null_tracer () =
  check_bool "disabled" false (Trace.enabled Trace.null);
  check_bool "on" false (Trace.on Trace.null ~cat:"sim");
  let r = Trace.span Trace.null ~cat:"sim" "body" (fun () -> 41 + 1) in
  check_int "span runs its body" 42 r;
  Trace.instant Trace.null ~cat:"sim" "i";
  Trace.counter Trace.null ~cat:"sim" "c" 1.0;
  Trace.complete Trace.null ~cat:"sim" "x" ~ts:0;
  check_int "no events recorded" 0 (Trace.event_count Trace.null)

let test_span_nesting_and_timestamps () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  now := 1_000;
  Trace.span t ~cat:"a" "outer" (fun () ->
      now := 2_500;
      Trace.span t ~cat:"a"
        ~args:(fun () -> [ ("k", Trace.Int 3) ])
        "inner"
        (fun () -> now := 3_000));
  check_int "two spans" 2 (Trace.event_count t);
  let chrome = Trace.to_chrome t in
  (* ts/dur are microseconds with a fixed-point ns fraction *)
  check_contains "inner span" chrome
    "\"name\":\"inner\",\"ts\":2.500,\"dur\":0.500,\"args\":{\"k\":3}";
  check_contains "outer span" chrome
    "\"name\":\"outer\",\"ts\":1.000,\"dur\":2.000"

let test_category_filter () =
  let t = Trace.create ~categories:[ "net" ] () in
  check_bool "net on" true (Trace.on t ~cat:"net");
  check_bool "sim off" false (Trace.on t ~cat:"sim");
  Trace.instant t ~cat:"sim" "skipped";
  Trace.instant t ~cat:"net" "kept";
  check_int "only net recorded" 1 (Trace.event_count t)

let test_ring_drops_oldest () =
  let t = Trace.create ~capacity:4 () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  for i = 1 to 6 do
    now := i * 1000;
    Trace.instant t ~cat:"c" (Printf.sprintf "e%d" i)
  done;
  check_int "len capped" 4 (Trace.event_count t);
  check_int "dropped" 2 (Trace.dropped t);
  let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl t)) in
  check_int "four lines" 4 (List.length lines);
  check_contains "oldest survivor first" (List.hd lines) "\"name\":\"e3\"";
  check_contains "newest last" (List.nth lines 3) "\"name\":\"e6\"";
  check_bool "e2 evicted" false (contains (Trace.to_jsonl t) "e2")

let test_export_shapes () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  now := 500;
  Trace.counter t ~cat:"sim" "depth" 7.0;
  Trace.instant t ~cat:"sim" ~args:[ ("s", Trace.Str "a\"b\nc") ] "mark";
  let chrome = Trace.to_chrome t in
  check_contains "counter phase" chrome
    "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"cat\":\"sim\",\"name\":\"depth\",\"ts\":0.500,\"args\":{\"value\":7}}";
  check_contains "instant phase" chrome "\"ph\":\"i\",\"s\":\"t\"";
  check_contains "string escaping" chrome "{\"s\":\"a\\\"b\\nc\"}";
  check_contains "process metadata" chrome
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"bmcast\"}}";
  check_contains "track metadata" chrome
    "\"name\":\"thread_name\",\"args\":{\"name\":\"sim\"}"

let test_export_deterministic () =
  let build () =
    let t = Trace.create () in
    let now = ref 0 in
    Trace.set_clock t (fun () -> !now);
    List.iter
      (fun (ts, cat, name) ->
        now := ts;
        Trace.instant t ~cat name)
      [ (1, "b", "x"); (2, "a", "y"); (3, "b", "z") ];
    t
  in
  check_string "chrome stable" (Trace.to_chrome (build ()))
    (Trace.to_chrome (build ()));
  check_string "jsonl stable" (Trace.to_jsonl (build ()))
    (Trace.to_jsonl (build ()))

(* --- Metrics registry --- *)

let test_metrics_handle_reuse () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m ~labels:[ ("disk", "ahci") ] "ops" in
  let c2 = Metrics.counter m ~labels:[ ("disk", "ahci") ] "ops" in
  check_bool "same handle" true (c1 == c2);
  Metrics.incr c1;
  Metrics.incr ~by:2.0 c2;
  Alcotest.(check (float 0.0)) "shared state" 3.0 !c1;
  let other = Metrics.counter m ~labels:[ ("disk", "ide") ] "ops" in
  check_bool "distinct labels, distinct handle" false (c1 == other);
  check_int "two instruments" 2 (Metrics.size m)

let test_metrics_label_order () =
  check_string "labels sorted in key" "x|a=1|b=2"
    (Metrics.key "x" [ ("b", "2"); ("a", "1") ]);
  let m = Metrics.create () in
  let g1 = Metrics.gauge m ~labels:[ ("b", "2"); ("a", "1") ] "g" in
  let g2 = Metrics.gauge m ~labels:[ ("a", "1"); ("b", "2") ] "g" in
  check_bool "order-insensitive registration" true (g1 == g2)

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  let (_ : float ref) = Metrics.counter m "x" in
  expect_invalid_arg "re-register as histogram" (fun () ->
      Metrics.histogram m "x")

let test_metrics_null_is_stateless () =
  check_bool "disabled" false (Metrics.enabled Metrics.null);
  let c1 = Metrics.counter Metrics.null "c" in
  Metrics.incr ~by:5.0 c1;
  let c2 = Metrics.counter Metrics.null "c" in
  Alcotest.(check (float 0.0)) "fresh handle each time" 0.0 !c2;
  check_int "nothing registered" 0 (Metrics.size Metrics.null);
  check_string "empty snapshot" "{\n}\n" (Metrics.to_json Metrics.null)

let test_metrics_to_json () =
  let m = Metrics.create () in
  Metrics.incr ~by:2.0 (Metrics.counter m "b_ops");
  Metrics.set (Metrics.gauge m "a_depth") 1.5;
  let h = Metrics.histogram m "lat" in
  List.iter (Stats.Histogram.add h) [ 1.0; 2.0; 3.0 ];
  let (_ : Stats.Histogram.t) = Metrics.histogram m "lat_empty" in
  let r = Metrics.rate m "bytes" in
  Stats.Rate.add r 0 10.0;
  let json = Metrics.to_json m in
  check_string "snapshot is stable" json (Metrics.to_json m);
  check_contains "gauge" json "\"a_depth\": 1.5";
  check_contains "counter" json "\"b_ops\": 2";
  check_contains "histogram" json "\"lat\": {\"count\":3,\"mean\":2,";
  check_contains "empty histogram collapses" json "\"lat_empty\": {\"count\":0}";
  check_contains "rate windows" json
    "\"bytes\": {\"total\":10,\"events\":1,\"windows\":[[0,10]]}";
  (* keys are emitted sorted, not in registration order *)
  let ia = String.index json 'a' in
  check_bool "sorted keys" true
    (ia < String.length json
    && contains (String.sub json 0 (ia + 10)) "a_depth")

(* --- Profile: span-scoped allocation attribution --- *)

let test_profile_null_is_inert () =
  check_bool "disabled" false (Profile.enabled Profile.null);
  Profile.enter Profile.null "x";
  Profile.exit Profile.null "x";
  check_int "span runs its body" 42 (Profile.span Profile.null "x" (fun () -> 42));
  check_int "no mismatches" 0 (Profile.mismatches Profile.null);
  check_bool "no rows" true (Profile.rows Profile.null = [])

let test_profile_attribution () =
  let p = Profile.create () in
  check_bool "enabled" true (Profile.enabled p);
  (* Nested scopes: the inner allocation must not also be charged to
     the outer category (self-attribution). *)
  let sink = ref [] in
  Profile.span p "outer" (fun () ->
      Profile.span p "inner" (fun () ->
          for i = 1 to 1000 do
            sink := [ float_of_int i ]
          done));
  ignore (Sys.opaque_identity !sink);
  check_int "no mismatches" 0 (Profile.mismatches p);
  let row cat =
    match List.find_opt (fun r -> r.Profile.row_cat = cat) (Profile.rows p) with
    | Some r -> r
    | None -> Alcotest.failf "category %s missing from rows" cat
  in
  let inner = row "inner" and outer = row "outer" in
  check_int "inner calls" 1 inner.Profile.calls;
  check_int "outer calls" 1 outer.Profile.calls;
  check_bool "attribution is non-negative" true
    (inner.Profile.minor_words >= 0.0 && outer.Profile.minor_words >= 0.0);
  (* 1000 boxed-float list cells land in the inner scope; the outer
     scope's self cost is only the profiler-adjacent residue. *)
  check_bool "inner dominates" true
    (inner.Profile.minor_words > 1000.0
    && inner.Profile.minor_words > outer.Profile.minor_words);
  check_contains "text report lists inner" (Profile.to_text p) "inner";
  check_contains "json has categories" (Profile.to_json p) "\"categories\"";
  Profile.clear p;
  check_bool "rows cleared" true (Profile.rows p = [])

let test_profile_mismatch_counted () =
  let p = Profile.create () in
  Profile.enter p "a";
  Profile.exit p "b";
  (* no scope of category b anywhere on the stack *)
  check_int "unmatched exit counted" 1 (Profile.mismatches p);
  Profile.exit p "a";
  check_int "balanced exit adds nothing" 1 (Profile.mismatches p);
  (* exit that force-closes an unbalanced scope above it *)
  Profile.enter p "c";
  Profile.enter p "d";
  Profile.exit p "c";
  check_bool "force-close counted" true (Profile.mismatches p >= 2)

(* --- Analytics: synthetic boot pipelines --- *)

(* Two hand-built boots on a clock-driven tracer. Durations in ms:
     fast: queue 1, vmm_init 2, discover 3, copy 4, devirt 0.5  (10.5)
     slow: queue 2, vmm_init 2, discover 1, copy 20, devirt 1   (26)   *)
let synthetic_trace () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  let ms f = int_of_float (f *. 1e6) in
  let boot m stages =
    List.fold_left
      (fun start (stage, dur_ms) ->
        let finish = start + ms dur_ms in
        now := finish;
        Trace.complete t ~cat:"boot" ~args:[ ("m", Trace.Str m) ] stage
          ~ts:start;
        finish)
      0 stages
    |> ignore
  in
  boot "fast"
    [ ("queue", 1.0); ("vmm_init", 2.0); ("discover", 3.0); ("copy", 4.0);
      ("devirt", 0.5) ];
  boot "slow"
    [ ("queue", 2.0); ("vmm_init", 2.0); ("discover", 1.0); ("copy", 20.0);
      ("devirt", 1.0) ];
  (* An op-level span (other category, "m" + "stage" args) must land in
     the per-operation table, not the boot pipeline. *)
  now := ms 1.5;
  Trace.complete t ~cat:"aoe"
    ~args:[ ("m", Trace.Str "fast"); ("stage", Trace.Str "transport") ]
    "aoe-read" ~ts:(ms 0.5);
  t

let test_analytics_pipeline () =
  let a = Analytics.of_trace ~slo_s:0.02 (synthetic_trace ()) in
  check_int "two machines" 2 (Analytics.machine_count a);
  Alcotest.(check (list string))
    "machine names sorted" [ "fast"; "slow" ] (Analytics.machine_names a);
  Alcotest.(check (list (pair string (float 1e-9))))
    "stages in pipeline order"
    [ ("queue", 1.0); ("vmm_init", 2.0); ("discover", 3.0); ("copy", 4.0);
      ("devirt", 0.5) ]
    (Analytics.stage_ms a "fast");
  (* stage-sum = boot-total invariant *)
  List.iter
    (fun m ->
      let sum =
        List.fold_left (fun acc (_, d) -> acc +. d) 0.0 (Analytics.stage_ms a m)
      in
      match Analytics.boot_total_ms a m with
      | Some total -> Alcotest.(check (float 1e-9)) (m ^ " total") sum total
      | None -> Alcotest.failf "machine %s has no boot total" m)
    (Analytics.machine_names a);
  check_bool "unknown machine" true
    (Analytics.stage_ms a "nope" = [] && Analytics.boot_total_ms a "nope" = None);
  (* fleet-wide stage table: every stage saw both boots *)
  let rows = Analytics.stage_rows a in
  Alcotest.(check (list string))
    "table in pipeline order" Analytics.stage_order
    (List.map (fun r -> r.Analytics.stage) rows);
  List.iter
    (fun r -> check_int (r.Analytics.stage ^ " count") 2 r.Analytics.count)
    rows;
  let copy = List.find (fun r -> r.Analytics.stage = "copy") rows in
  Alcotest.(check (float 1e-6)) "copy max" 20.0 copy.Analytics.max_ms;
  Alcotest.(check (float 1e-6)) "copy p50" 12.0 copy.Analytics.p50_ms;
  (* critical path: copy dominates both boots *)
  (match Analytics.critical_path a with
  | ("copy", 2) :: _ -> ()
  | cp ->
    Alcotest.failf "unexpected critical path head: %s"
      (String.concat ","
         (List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n) cp)));
  (* SLO at 20 ms: only "slow" (26 ms) violates, wasting 6 ms *)
  let slo = Analytics.slo a in
  check_int "boots" 2 slo.Analytics.boots;
  check_int "violations" 1 slo.Analytics.violations;
  Alcotest.(check (float 1e-6)) "wasted ms" 6.0 slo.Analytics.wasted_ms;
  (* op table *)
  (match Analytics.op_rows a with
  | [ op ] ->
    check_string "op key" "aoe.aoe-read" op.Analytics.opname;
    check_int "op count" 1 op.Analytics.ocount;
    Alcotest.(check (float 1e-6)) "op total" 1.0 op.Analytics.ototal_ms
  | ops -> Alcotest.failf "expected 1 op row, got %d" (List.length ops));
  (* renders are deterministic and carry the headline numbers *)
  let a2 = Analytics.of_trace ~slo_s:0.02 (synthetic_trace ()) in
  check_string "to_json stable" (Analytics.to_json a) (Analytics.to_json a2);
  check_string "to_text stable" (Analytics.to_text a) (Analytics.to_text a2);
  check_contains "json has slo" (Analytics.to_json a) "\"violations\":1";
  check_contains "text has stage table" (Analytics.to_text a) "copy"

let test_analytics_ignores_untagged () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  now := 1_000_000;
  (* boot span without an "m" arg, instants, and foreign spans without
     a "stage" arg must all be ignored *)
  Trace.complete t ~cat:"boot" "queue" ~ts:0;
  Trace.instant t ~cat:"boot" ~args:[ ("m", Trace.Str "x") ] "mark";
  Trace.complete t ~cat:"net" ~args:[ ("m", Trace.Str "x") ] "send" ~ts:0;
  let a = Analytics.of_trace t in
  check_int "nothing folded" 0 (Analytics.machine_count a);
  check_bool "no ops" true (Analytics.op_rows a = []);
  check_int "no boots" 0 (Analytics.slo a).Analytics.boots

(* --- End-to-end: traced deployments on the simulated testbed --- *)

let image_mb = 32
let image_sectors = image_mb * 2048

(* Same single-machine AoE rig as the chaos suite: boot the VMM, touch
   the disk once (forcing a copy-on-read redirect), wait for
   de-virtualization. *)
let run_deploy ?(seed = 42) ?scenario ~trace ~metrics () =
  let sim = Sim.create ~seed ~trace ~metrics () in
  let fabric = Fabric.create sim () in
  let profile =
    { Disk.hdd_constellation2 with Disk.capacity_sectors = 2 * image_sectors }
  in
  let server_disk = Disk.create sim profile in
  Disk.fill_with_image server_disk;
  let vblade = Vblade.create sim ~fabric ~name:"server" ~disk:server_disk () in
  let machine =
    Machine.create sim ~name:"node0" ~disk_profile:profile
      ~disk_kind:Machine.Ahci_disk ~fabric ()
  in
  let params = Params.default ~image_sectors in
  (match scenario with
  | None -> ()
  | Some name ->
    let plan =
      match Fault.scenario ~image_sectors name with
      | Some p -> p
      | None -> Alcotest.failf "unknown scenario %s" name
    in
    let _inj =
      Fault.inject { Fault.sim; fabric; server = vblade; server_disk } plan
    in
    ());
  let vmm_ref = ref None in
  Sim.spawn_at sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot machine ~params ~server_port:(Vblade.port_id vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm);
  Sim.run ~until:(Time.minutes 30) sim;
  Option.get !vmm_ref

let test_trace_deterministic_chaos () =
  let go () =
    let trace = Trace.create () in
    let vmm =
      run_deploy ~scenario:"crash-mid-copy" ~trace ~metrics:Metrics.null ()
    in
    check_bool "devirtualized" true (Vmm.devirtualized_at vmm <> None);
    Trace.to_chrome trace
  in
  let a = go () and b = go () in
  check_bool "byte-identical chrome export" true (String.equal a b);
  (* acceptance: spans from at least these five subsystems *)
  List.iter
    (fun cat ->
      check_contains "category present" a
        (Printf.sprintf "\"cat\":%S" cat))
    [ "sim"; "net"; "storage"; "mediator"; "faults" ]

let test_disabled_tracer_is_inert () =
  let totals_of trace =
    let vmm = run_deploy ~trace ~metrics:Metrics.null () in
    (Vmm.devirtualized_at vmm, Vmm.totals vmm)
  in
  let null_at, null_totals = totals_of Trace.null in
  let traced = Trace.create () in
  let traced_at, traced_totals = totals_of traced in
  check_bool "same devirtualization time" true (null_at = traced_at);
  check_bool "same totals" true (null_totals = traced_totals);
  check_int "null tracer stays empty" 0 (Trace.event_count Trace.null);
  check_bool "real tracer saw events" true (Trace.event_count traced > 0)

let test_metrics_match_vmm_totals () =
  let run () =
    let metrics = Metrics.create () in
    let vmm = run_deploy ~trace:Trace.null ~metrics () in
    (metrics, Vmm.totals vmm)
  in
  let metrics, totals = run () in
  let h = Metrics.histogram metrics ~labels:[ ("disk", "ahci") ] "redirect_latency_ms" in
  check_int "one histogram sample per redirect" totals.Vmm.redirects
    (Stats.Histogram.count h);
  check_bool "redirects happened" true (totals.Vmm.redirects > 0);
  let r = Metrics.rate metrics "copy.bytes" in
  Alcotest.(check (float 0.0))
    "rate total equals background bytes"
    (float_of_int totals.Vmm.background_bytes)
    (Stats.Rate.total r);
  check_bool "background copy ran" true (totals.Vmm.background_bytes > 0);
  (* the snapshot is itself deterministic for a fixed seed *)
  let metrics2, _ = run () in
  check_string "snapshot deterministic" (Metrics.to_json metrics)
    (Metrics.to_json metrics2)

(* --- Metrics: typed snapshot API (iter / fold / find / derived) --- *)

let test_metrics_typed_snapshot () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr ~by:3.0 c;
  let g = Metrics.gauge m ~labels:[ ("x", "1") ] "b.gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram m "c.hist" in
  Stats.Histogram.add h 1.0;
  Stats.Histogram.add h 2.0;
  let r = Metrics.rate m "d.rate" in
  Stats.Rate.add r 0 5.0;
  let calls = ref 0 in
  Metrics.derived m "e.derived" (fun () ->
      incr calls;
      42.0);
  Alcotest.(check (list string))
    "fold visits sorted keys"
    [ "a.count"; "b.gauge|x=1"; "c.hist"; "d.rate"; "e.derived" ]
    (List.rev (Metrics.fold m (fun k _ acc -> k :: acc) []));
  let scalar_of k =
    match Metrics.find m k with
    | Some v -> Metrics.scalar v
    | None -> Alcotest.failf "key %S not found" k
  in
  Alcotest.(check (float 0.0)) "counter scalar" 3.0 (scalar_of "a.count");
  Alcotest.(check (float 0.0)) "gauge scalar" 2.5 (scalar_of "b.gauge|x=1");
  Alcotest.(check (float 0.0)) "histogram scalar is count" 2.0
    (scalar_of "c.hist");
  Alcotest.(check (float 0.0)) "rate scalar is total" 5.0 (scalar_of "d.rate");
  Alcotest.(check (float 0.0)) "derived scalar" 42.0 (scalar_of "e.derived");
  (* the filter prunes before derived closures run *)
  let before = !calls in
  Metrics.iter ~filter:(fun k -> k = "a.count") m (fun _ _ -> ());
  check_int "filtered-out derived not evaluated" before !calls;
  Metrics.iter m (fun _ _ -> ());
  check_int "unfiltered iter evaluates derived" (before + 1) !calls;
  (* first registration wins; kind mismatch still raises *)
  Metrics.derived m "e.derived" (fun () -> 0.0);
  Alcotest.(check (float 0.0))
    "derived re-registration is a no-op" 42.0 (scalar_of "e.derived");
  expect_invalid_arg "derived over a counter" (fun () ->
      Metrics.derived m "a.count" (fun () -> 0.0));
  (* to_json filter restricts the snapshot *)
  let j = Metrics.to_json ~filter:(String.starts_with ~prefix:"a.") m in
  check_contains "filtered json keeps match" j "\"a.count\"";
  check_bool "filtered json drops rest" false (contains j "b.gauge");
  (* null registry: derived is a no-op and snapshots stay empty *)
  Metrics.derived Metrics.null "z" (fun () -> 1.0);
  check_string "null to_json empty" "{\n}\n" (Metrics.to_json Metrics.null)

(* --- Timeseries: sampling, status, rings, rollups, exports --- *)

let test_timeseries_status_and_raw () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  check_int "interval" 1000 (Timeseries.interval_ns ts);
  check_int "no sweeps yet" 0 (Timeseries.sweeps ts);
  Alcotest.(check (option reject)) "untracked key" None (Timeseries.status ts "g");
  Metrics.set g 1.0;
  Timeseries.sample ts ~now:1000;
  Timeseries.sample ts ~now:2000;
  Metrics.set g 5.0;
  Timeseries.sample ts ~now:3000;
  check_int "sweeps" 3 (Timeseries.sweeps ts);
  check_int "last sweep time" 3000 (Timeseries.last_sweep_at ts);
  Alcotest.(check (list string)) "keys" [ "g" ] (Timeseries.keys ts);
  (match Timeseries.status ts "g" with
  | None -> Alcotest.fail "status missing"
  | Some st ->
    check_int "count" 3 st.Timeseries.s_count;
    Alcotest.(check (pair int (float 0.0)))
      "last" (3000, 5.0) st.Timeseries.s_last;
    Alcotest.(check (option (pair int (float 0.0))))
      "prev" (Some (2000, 1.0)) st.Timeseries.s_prev;
    check_int "same_run resets on change" 1 st.Timeseries.s_same_run);
  Alcotest.(check (list (pair int (float 0.0))))
    "raw tail" [ (2000, 1.0); (3000, 5.0) ]
    (Timeseries.raw ~n:2 ts "g");
  (* a sweep-time filter hides keys entirely *)
  let ts2 = Timeseries.create ~interval_ns:1000 ~filter:(fun k -> k <> "g") m in
  Timeseries.sample ts2 ~now:1000;
  check_int "filtered sampler tracks nothing" 0 (Timeseries.nkeys ts2);
  expect_invalid_arg "zero interval" (fun () ->
      Timeseries.create ~interval_ns:0 m);
  expect_invalid_arg "tiny capacity" (fun () ->
      Timeseries.create ~capacity:2 m)

let test_timeseries_max_keys () =
  let m = Metrics.create () in
  for i = 0 to 9 do
    Metrics.set (Metrics.gauge m (Printf.sprintf "k%02d" i)) (float_of_int i)
  done;
  let ts = Timeseries.create ~interval_ns:1000 ~max_keys:4 m in
  Timeseries.sample ts ~now:1000;
  check_int "tracked capped" 4 (Timeseries.nkeys ts);
  check_int "overflow counted" 6 (Timeseries.dropped_keys ts);
  Alcotest.(check (list string))
    "first keys in sorted order win"
    [ "k00"; "k01"; "k02"; "k03" ]
    (Timeseries.keys ts)

(* Parse the CSV export back into rows; the header line is pinned
   here so format drift fails loudly. *)
let csv_rows ts =
  let lines = String.split_on_char '\n' (Timeseries.to_csv ts) in
  match lines with
  | meta :: header :: rest ->
    check_bool "metadata line" true (String.starts_with ~prefix:"# bmcast-timeseries v1 " meta);
    check_string "csv header" "key,tier,t_ns,count,min,mean,max" header;
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match String.split_on_char ',' l with
          | [ key; tier; t; n; lo; mean; hi ] ->
            Some
              ( key,
                int_of_string tier,
                int_of_string t,
                int_of_string n,
                float_of_string lo,
                float_of_string mean,
                float_of_string hi )
          | _ -> Alcotest.failf "bad csv row %S" l)
      rest
  | _ -> Alcotest.fail "csv too short"

let test_timeseries_eviction_and_rollup () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  let ts = Timeseries.create ~interval_ns:1000 ~capacity:10 ~tiers:2 m in
  for i = 1 to 105 do
    Metrics.set g (float_of_int i);
    Timeseries.sample ts ~now:(i * 1000)
  done;
  let rows = csv_rows ts in
  let tier0 = List.filter (fun (_, t, _, _, _, _, _) -> t = 0) rows in
  let tier1 = List.filter (fun (_, t, _, _, _, _, _) -> t = 1) rows in
  (* the raw ring wrapped: only the 10 newest samples remain *)
  check_int "raw ring holds capacity" 10 (List.length tier0);
  (match tier0 with
  | (_, _, t, _, _, _, _) :: _ -> check_int "oldest raw sample" 96_000 t
  | [] -> Alcotest.fail "no tier0 rows");
  (* 105 samples = 10 complete x10 buckets (the 5-sample accumulator is
     not exported) *)
  check_int "complete rollup buckets" 10 (List.length tier1);
  List.iter
    (fun (_, _, t, n, lo, mean, hi) ->
      check_int "bucket count" 10 n;
      let first = float_of_int (t / 1000) in
      Alcotest.(check (float 1e-9)) "bucket min" first lo;
      Alcotest.(check (float 1e-9)) "bucket max" (first +. 9.0) hi;
      Alcotest.(check (float 1e-6)) "bucket mean" (first +. 4.5) mean)
    tier1

(* Rollup conservation: every complete tier-1 bucket must agree with
   the 10 raw samples it aggregates on count, min, max and sum. *)
let prop_rollup_conservation =
  QCheck.Test.make ~name:"rollup buckets conserve count/min/mean/max"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 10 150) (int_range (-1000) 1000))
    (fun ints ->
      let values = List.map float_of_int ints in
      let m = Metrics.create () in
      let g = Metrics.gauge m "v" in
      let ts =
        Timeseries.create ~interval_ns:1000
          ~capacity:(max 10 (List.length values))
          ~tiers:2 m
      in
      List.iteri
        (fun i v ->
          Metrics.set g v;
          Timeseries.sample ts ~now:((i + 1) * 1000))
        values;
      let rows = csv_rows ts in
      let tier0 = List.filter (fun (_, t, _, _, _, _, _) -> t = 0) rows in
      let tier1 = List.filter (fun (_, t, _, _, _, _, _) -> t = 1) rows in
      if List.length tier0 <> List.length values then
        QCheck.Test.fail_reportf "raw ring lost samples";
      if List.length tier1 <> List.length values / Timeseries.rollup_factor
      then QCheck.Test.fail_reportf "unexpected rollup bucket count";
      List.iteri
        (fun bi (_, _, bt, n, lo, mean, hi) ->
          let children =
            List.filteri
              (fun i _ ->
                i >= bi * Timeseries.rollup_factor
                && i < (bi + 1) * Timeseries.rollup_factor)
              values
          in
          let cmin = List.fold_left min infinity children in
          let cmax = List.fold_left max neg_infinity children in
          let csum = List.fold_left ( +. ) 0.0 children in
          (match List.nth_opt values (bi * Timeseries.rollup_factor) with
          | Some _ when bt <> (bi * Timeseries.rollup_factor + 1) * 1000 ->
            QCheck.Test.fail_reportf "bucket %d at wrong time %d" bi bt
          | _ -> ());
          if n <> Timeseries.rollup_factor then
            QCheck.Test.fail_reportf "bucket %d count %d" bi n;
          if lo <> cmin || hi <> cmax then
            QCheck.Test.fail_reportf "bucket %d min/max mismatch" bi;
          if Float.abs ((mean *. float_of_int n) -. csum) > 1e-6 *. (1.0 +. Float.abs csum)
          then QCheck.Test.fail_reportf "bucket %d sum not conserved" bi)
        tier1;
      true)

let test_timeseries_exports () =
  let m = Metrics.create () in
  let g = Metrics.gauge m ~labels:[ ("server", "s-1") ] "vblade.up" in
  let c = Metrics.counter m "plain" in
  let ts = Timeseries.create ~interval_ns:1_000_000_000 m in
  Metrics.set g 1.0;
  Metrics.incr ~by:2.0 c;
  Timeseries.sample ts ~now:1_000_000_000;
  Timeseries.sample ts ~now:2_000_000_000;
  let om = Timeseries.to_openmetrics ts in
  check_contains "om type line" om "# TYPE bmcast_plain gauge";
  check_contains "om sample" om "bmcast_plain 2 2.000000000";
  check_contains "om label recovery" om
    {|bmcast_vblade_up{server="s-1"} 1 2.000000000|};
  check_bool "om terminator" true
    (String.ends_with ~suffix:"# EOF\n" om);
  let tj = Timeseries.timeline_json ts in
  check_contains "timeline interval" tj "\"interval_ns\":1000000000";
  check_contains "timeline points" tj "[1000000000,";
  (* same inputs -> byte-identical exports *)
  let again () =
    let m2 = Metrics.create () in
    let g2 = Metrics.gauge m2 ~labels:[ ("server", "s-1") ] "vblade.up" in
    let c2 = Metrics.counter m2 "plain" in
    let ts2 = Timeseries.create ~interval_ns:1_000_000_000 m2 in
    Metrics.set g2 1.0;
    Metrics.incr ~by:2.0 c2;
    Timeseries.sample ts2 ~now:1_000_000_000;
    Timeseries.sample ts2 ~now:2_000_000_000;
    ts2
  in
  let ts2 = again () in
  check_string "csv deterministic" (Timeseries.to_csv ts)
    (Timeseries.to_csv ts2);
  check_string "openmetrics deterministic" om (Timeseries.to_openmetrics ts2)

(* --- Watchdog: rules, episodes, detection latency --- *)

(* Drive a sampler by hand: set the gauge then sweep at 1 ms steps. *)
let drive ts g values =
  List.iteri
    (fun i v ->
      Metrics.set g v;
      Timeseries.sample ts ~now:((i + 1) * 1000))
    values

let test_watchdog_threshold_episodes () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "up" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  let w =
    Watchdog.create
      [ Watchdog.threshold ~hold:2 ~name:"down" ~key:"up" Watchdog.Below 0.5 ]
  in
  Watchdog.attach w ts;
  drive ts g [ 1.0; 1.0; 0.0; 0.0; 0.0; 1.0; 0.0; 0.0 ];
  check_int "one alert per breach episode" 2 (Watchdog.alert_count w);
  (match Watchdog.alerts w with
  | [ a1; a2 ] ->
    check_int "fires when hold completes" 4000 a1.Watchdog.a_at;
    check_int "re-arms after recovery" 8000 a2.Watchdog.a_at;
    check_string "rule name" "down" a1.Watchdog.a_rule
  | _ -> Alcotest.fail "expected exactly two alerts");
  Alcotest.(check (list (pair string string)))
    "still firing at end"
    [ ("down", "up") ]
    (Watchdog.firing w)

let test_watchdog_rate_absent_stale () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "q" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  let w =
    Watchdog.create
      [ Watchdog.rate_of_change ~name:"spike" ~key:"q" Watchdog.Above 1e6;
        Watchdog.absent ~after:2 ~name:"gone" ~key:"nope" ();
        Watchdog.stale ~after:3 ~name:"stuck" ~key:"q" () ]
  in
  Watchdog.attach w ts;
  (* interval 1000 ns = 1e-6 s, so +10 in one step = 1e7/s > 1e6 *)
  drive ts g [ 0.0; 10.0; 10.0; 10.0; 10.0 ];
  let by_rule name =
    List.filter (fun a -> a.Watchdog.a_rule = name) (Watchdog.alerts w)
  in
  (match by_rule "spike" with
  | [ a ] -> check_int "rate alert on second sample" 2000 a.Watchdog.a_at
  | l -> Alcotest.failf "spike alerts: %d" (List.length l));
  (match by_rule "gone" with
  | [ a ] ->
    check_int "absent fires after N sweeps" 2000 a.Watchdog.a_at;
    check_string "absent key is the pattern" "nope" a.Watchdog.a_key
  | l -> Alcotest.failf "gone alerts: %d" (List.length l));
  (match by_rule "stuck" with
  | [ a ] ->
    (* 10,10,10 is the first 3-sample run of equal values *)
    check_int "stale fires after run of equals" 4000 a.Watchdog.a_at
  | l -> Alcotest.failf "stuck alerts: %d" (List.length l))

let test_watchdog_key_matching () =
  let m = Metrics.create () in
  let up = Metrics.gauge m ~labels:[ ("server", "s0") ] "vblade.up" in
  let bytes = Metrics.gauge m ~labels:[ ("server", "s0") ] "vblade.uplink_bytes" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  let w =
    Watchdog.create
      [ Watchdog.threshold ~name:"down" ~key:"vblade.up" Watchdog.Below 0.5 ]
  in
  Watchdog.attach w ts;
  Metrics.set up 0.0;
  Metrics.set bytes 0.0;
  Timeseries.sample ts ~now:1000;
  check_int "only the exact metric name matches" 1 (Watchdog.alert_count w);
  (match Watchdog.alerts w with
  | [ a ] -> check_string "labelled key" "vblade.up|server=s0" a.Watchdog.a_key
  | _ -> Alcotest.fail "expected one alert");
  (* a trailing '.' opts into free prefix matching *)
  let w2 =
    Watchdog.create
      [ Watchdog.threshold ~name:"any" ~key:"vblade." Watchdog.Below 0.5 ]
  in
  let ts2 = Timeseries.create ~interval_ns:1000 m in
  Watchdog.attach w2 ts2;
  Timeseries.sample ts2 ~now:1000;
  check_int "prefix pattern matches both" 2 (Watchdog.alert_count w2)

let test_watchdog_detection_latency () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "up" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  let w =
    Watchdog.create
      [ Watchdog.threshold ~name:"down" ~key:"up" Watchdog.Below 0.5 ]
  in
  Watchdog.attach w ts;
  Metrics.set g 1.0;
  Timeseries.sample ts ~now:1000;
  (* fault lands between sweeps; the next sweep's alert resolves it *)
  Watchdog.expect w ~label:"crash" ~now:1400;
  check_int "expectation armed" 1 (Watchdog.pending_expectations w);
  Metrics.set g 0.0;
  Timeseries.sample ts ~now:2000;
  check_int "expectation resolved" 0 (Watchdog.pending_expectations w);
  (match Watchdog.detections w with
  | [ d ] ->
    check_string "label" "crash" d.Watchdog.d_label;
    check_int "latency = alert - fault" 600 (Watchdog.detection_latency_ns d);
    check_bool "latency bounded by interval" true
      (Watchdog.detection_latency_ns d <= Timeseries.interval_ns ts)
  | _ -> Alcotest.fail "expected one detection");
  let aj = Watchdog.alerts_json w in
  check_contains "alerts_json has detections" aj {|"detections":[|};
  check_contains "alerts_json detection entry" aj
    {|{"label":"crash","rule":"down","key":"up","fault_t_ns":1400,"alert_t_ns":2000,"latency_ns":600}|}

let test_watchdog_rule_of_string () =
  List.iter
    (fun (spec, name) ->
      check_string spec name (Watchdog.rule_name (Watchdog.rule_of_string spec)))
    [ ("server-down:vblade.up<0.5", "server-down");
      ("q>3@2", "q>3@2");
      ("spike:rate(net.bytes_delivered)>1e9", "spike");
      ("gone:absent(vblade.up)@4", "gone");
      ("stuck:stale(copy.bytes)@3", "stuck") ];
  List.iter
    (fun spec ->
      expect_invalid_arg spec (fun () -> Watchdog.rule_of_string spec))
    [ ""; "novalue>"; "x<notafloat"; "rate(x)"; "absent(x)@0"; "stale(x)@1" ];
  (* parsed rules behave like constructed ones *)
  let m = Metrics.create () in
  let g = Metrics.gauge m "q" in
  let ts = Timeseries.create ~interval_ns:1000 m in
  let w = Watchdog.create [ Watchdog.rule_of_string "hot:q>5@2" ] in
  Watchdog.attach w ts;
  drive ts g [ 6.0; 6.0; 1.0 ];
  check_int "parsed hold honoured" 1 (Watchdog.alert_count w);
  (match Watchdog.alerts w with
  | [ a ] -> check_int "fires at second breach" 2000 a.Watchdog.a_at
  | _ -> Alcotest.fail "expected one alert")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "stats",
        [ Alcotest.test_case "histogram empty contract" `Quick
            test_histogram_empty;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolation;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
          Alcotest.test_case "histogram spill" `Quick test_histogram_spill;
          qt prop_bucketed_percentile_error;
          qt prop_percentile_bounds;
          qt prop_welford_matches_two_pass;
          Alcotest.test_case "bucket_mean skips gaps" `Quick
            test_bucket_mean_skips_gaps;
          Alcotest.test_case "per_window zero-fills gaps" `Quick
            test_per_window_zero_fills_gaps;
          Alcotest.test_case "window boundaries are half-open" `Quick
            test_window_boundaries ] );
      ( "trace",
        [ Alcotest.test_case "null tracer records nothing" `Quick
            test_null_tracer;
          Alcotest.test_case "span nesting and timestamps" `Quick
            test_span_nesting_and_timestamps;
          Alcotest.test_case "category filter" `Quick test_category_filter;
          Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "export shapes" `Quick test_export_shapes;
          Alcotest.test_case "exports deterministic" `Quick
            test_export_deterministic ] );
      ( "metrics",
        [ Alcotest.test_case "handle reuse" `Quick test_metrics_handle_reuse;
          Alcotest.test_case "label order" `Quick test_metrics_label_order;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "null is stateless" `Quick
            test_metrics_null_is_stateless;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
          Alcotest.test_case "typed snapshot" `Quick
            test_metrics_typed_snapshot ] );
      ( "timeseries",
        [ Alcotest.test_case "status and raw ring" `Quick
            test_timeseries_status_and_raw;
          Alcotest.test_case "max_keys cap" `Quick test_timeseries_max_keys;
          Alcotest.test_case "eviction and rollup" `Quick
            test_timeseries_eviction_and_rollup;
          qt prop_rollup_conservation;
          Alcotest.test_case "exports" `Quick test_timeseries_exports ] );
      ( "watchdog",
        [ Alcotest.test_case "threshold episodes" `Quick
            test_watchdog_threshold_episodes;
          Alcotest.test_case "rate / absent / stale" `Quick
            test_watchdog_rate_absent_stale;
          Alcotest.test_case "key matching" `Quick test_watchdog_key_matching;
          Alcotest.test_case "detection latency" `Quick
            test_watchdog_detection_latency;
          Alcotest.test_case "rule_of_string" `Quick
            test_watchdog_rule_of_string ] );
      ( "profile",
        [ Alcotest.test_case "null is inert" `Quick test_profile_null_is_inert;
          Alcotest.test_case "nested attribution" `Quick
            test_profile_attribution;
          Alcotest.test_case "mismatches counted" `Quick
            test_profile_mismatch_counted ] );
      ( "analytics",
        [ Alcotest.test_case "synthetic boot pipeline" `Quick
            test_analytics_pipeline;
          Alcotest.test_case "untagged events ignored" `Quick
            test_analytics_ignores_untagged ] );
      ( "e2e",
        [ Alcotest.test_case "chaos trace is byte-deterministic" `Quick
            test_trace_deterministic_chaos;
          Alcotest.test_case "disabled tracer is inert" `Quick
            test_disabled_tracer_is_inert;
          Alcotest.test_case "metrics match Vmm.totals" `Quick
            test_metrics_match_vmm_totals ] ) ]
