(* Integration tests for the BMcast core: full deployments through the
   register-level driver/mediator/controller/disk/AoE stack. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Signal = Bmcast_engine.Signal
module Mmio = Bmcast_hw.Mmio
module Pio = Bmcast_hw.Pio
module Cpu = Bmcast_hw.Cpu
module Memmap = Bmcast_hw.Memmap
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Block_io = Bmcast_guest.Block_io
module Params = Bmcast_core.Params
module Bitmap = Bmcast_core.Bitmap
module Vmm = Bmcast_core.Vmm
module Background_copy = Bmcast_core.Background_copy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Bitmap unit tests --- *)

let test_bitmap_basics () =
  let b = Bitmap.create ~sectors:100 in
  check_bool "empty" false (Bitmap.is_filled b 5);
  check_bool "first set wins" true (Bitmap.set_filled b 5);
  check_bool "second set loses" false (Bitmap.set_filled b 5);
  check_int "count" 1 (Bitmap.filled_count b);
  check_int "range fill" 9 (Bitmap.fill_range b ~lba:0 ~count:10);
  check_bool "not complete" false (Bitmap.is_complete b);
  ignore (Bitmap.fill_range b ~lba:10 ~count:90 : int);
  check_bool "complete" true (Bitmap.is_complete b)

let test_bitmap_empty_subranges () =
  let b = Bitmap.create ~sectors:20 in
  ignore (Bitmap.fill_range b ~lba:5 ~count:5 : int);
  Alcotest.(check (list (pair int int)))
    "subranges" [ (0, 5); (10, 10) ]
    (Bitmap.empty_subranges b ~lba:0 ~count:20);
  Alcotest.(check (list (pair int int)))
    "all filled" []
    (Bitmap.empty_subranges b ~lba:5 ~count:5)

let test_bitmap_find_empty_run () =
  let b = Bitmap.create ~sectors:100 in
  ignore (Bitmap.fill_range b ~lba:0 ~count:50 : int);
  (match Bitmap.find_empty_run b ~from:0 ~max:30 with
  | Some (50, 30) -> ()
  | Some (l, c) -> Alcotest.failf "got (%d,%d)" l c
  | None -> Alcotest.fail "none");
  (* Wrapping search. *)
  ignore (Bitmap.fill_range b ~lba:50 ~count:49 : int);
  (match Bitmap.find_empty_run b ~from:80 ~max:10 with
  | Some (99, 1) -> ()
  | Some (l, c) -> Alcotest.failf "wrap got (%d,%d)" l c
  | None -> Alcotest.fail "none");
  ignore (Bitmap.set_filled b 99 : bool);
  check_bool "complete -> none" true (Bitmap.find_empty_run b ~from:0 ~max:10 = None)

let test_bitmap_serialization () =
  let b = Bitmap.create ~sectors:77 in
  ignore (Bitmap.fill_range b ~lba:3 ~count:20 : int);
  let b2 = Bitmap.of_bytes ~sectors:77 (Bitmap.to_bytes b) in
  check_int "filled preserved" (Bitmap.filled_count b) (Bitmap.filled_count b2);
  for i = 0 to 76 do
    check_bool "bit preserved" (Bitmap.is_filled b i) (Bitmap.is_filled b2 i)
  done

let prop_bitmap_fill_count_consistent =
  QCheck.Test.make ~name:"bitmap filled_count matches bits" ~count:100
    QCheck.(list (pair (int_bound 90) (int_range 1 10)))
    (fun ranges ->
      let b = Bitmap.create ~sectors:100 in
      List.iter
        (fun (lba, count) ->
          let count = min count (100 - lba) in
          if count > 0 then ignore (Bitmap.fill_range b ~lba ~count : int))
        ranges;
      let expect = ref 0 in
      for i = 0 to 99 do
        if Bitmap.is_filled b i then incr expect
      done;
      !expect = Bitmap.filled_count b)

(* --- Full-stack deployment rig --- *)

type rig = {
  sim : Sim.t;
  machine : Machine.t;
  server_disk : Disk.t;
  vblade : Vblade.t;
  params : Params.t;
}

(* Small disks so tests run fast: a 64 MB image on a 256 MB disk. *)
let image_sectors = 64 * 2048
let test_disk_profile =
  { Disk.hdd_constellation2 with Disk.capacity_sectors = 256 * 2048 }

let make_rig ?(disk_kind = Machine.Ahci_disk) ?(write_interval = Time.ms 2)
    ?(loss = 0.0) () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim ~loss_rate:loss () in
  let server_disk = Disk.create sim test_disk_profile in
  Disk.fill_with_image server_disk;
  let vblade =
    Vblade.create sim ~fabric ~name:"server" ~disk:server_disk ()
  in
  let machine =
    Machine.create sim ~name:"node0" ~disk_profile:test_disk_profile
      ~disk_kind ~fabric ()
  in
  let params =
    { (Params.default ~image_sectors) with Params.write_interval }
  in
  { sim; machine; server_disk; vblade; params }

(* Boot the VMM, attach the guest driver, return everything. *)
let deploy_and ?(disk_kind = Machine.Ahci_disk) ?write_interval
    ?(release_memory = false) (guest : Vmm.t -> Block_io.t -> unit) =
  let rig = make_rig ~disk_kind ?write_interval () in
  let vmm_ref = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ~release_memory ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach rig.machine in
      guest vmm blk);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  (rig, Option.get !vmm_ref)

let content_ok ~disk ~lba ~count =
  Array.for_all2 Content.equal
    (Disk.peek disk ~lba ~count)
    (Content.image_sectors ~lba ~count)

(* --- copy-on-read --- *)

let test_copy_on_read_returns_image_data () =
  let got = ref [||] in
  let rig, vmm =
    deploy_and (fun _vmm blk -> got := Block_io.read blk ~lba:1000 ~count:64)
  in
  ignore vmm;
  check_bool "data is image content" true
    (Array.for_all2 Content.equal !got (Content.image_sectors ~lba:1000 ~count:64));
  (* Write-back: the local disk now holds those sectors. *)
  check_bool "written back locally" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:1000 ~count:64)

let test_cold_read_redirects_warm_does_not () =
  (* Read near the end of the image (the ascending background copy has
     not arrived): the first read must be served by redirection; after
     its write-back lands, re-reading the same blocks is a local
     pass-through (no new redirect). *)
  let lba = image_sectors - 2048 in
  let redirects = ref (-1, -1) in
  let _rig, _vmm =
    deploy_and (fun vmm blk ->
        ignore (Block_io.read blk ~lba ~count:64 : Content.t array);
        let after_cold = (Vmm.totals vmm).Vmm.redirects in
        (* Let the asynchronous write-back land before re-reading. *)
        Sim.sleep (Time.ms 200);
        ignore (Block_io.read blk ~lba ~count:64 : Content.t array);
        redirects := (after_cold, (Vmm.totals vmm).Vmm.redirects))
  in
  let after_cold, after_warm = !redirects in
  check_int "cold read redirected" 1 after_cold;
  check_int "warm read local" after_cold after_warm

let test_guest_write_passthrough () =
  let payload = Content.data_sectors ~count:32 in
  let rig, _vmm =
    deploy_and (fun _vmm blk ->
        Block_io.write blk ~lba:2000 ~count:32 payload)
  in
  check_bool "local disk holds guest data" true
    (Array.for_all2 Content.equal payload
       (Disk.peek rig.machine.Machine.disk ~lba:2000 ~count:32))

let test_mixed_read_assembles_correctly () =
  (* Write sectors 104..111, then read 100..119: the read must return
     guest data where written and image data elsewhere. *)
  let payload = Content.data_sectors ~count:8 in
  let got = ref [||] in
  let _rig, _vmm =
    deploy_and (fun _vmm blk ->
        Block_io.write blk ~lba:104 ~count:8 payload;
        got := Block_io.read blk ~lba:100 ~count:20)
  in
  let expect = Content.image_sectors ~lba:100 ~count:20 in
  Array.blit payload 0 expect 4 8;
  check_bool "assembled" true (Array.for_all2 Content.equal !got expect)

(* --- full deployment & de-virtualization --- *)

let test_full_deployment_completes () =
  let rig, vmm =
    deploy_and (fun vmm blk ->
        (* Touch the disk so the controller gets initialized, then wait
           out the deployment. *)
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        Vmm.wait_devirtualized vmm)
  in
  check_bool "deployed" true (Bitmap.is_complete (Vmm.bitmap vmm));
  check_bool "devirtualized" true (Vmm.devirtualized_at vmm <> None);
  check_bool "phase" true (Vmm.phase vmm = Runtime.Devirtualized);
  (* Every image sector equals the server copy. *)
  check_bool "disk equals image" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:0 ~count:image_sectors)

let test_devirt_zero_overhead () =
  let rig = make_rig () in
  let traps_after = ref (-1) and exits_after = ref (-1) in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      (* Post-devirt I/O must neither trap nor exit. *)
      let t0 = Mmio.trapped_accesses rig.machine.Machine.mmio in
      let e0 = Cpu.total_exits rig.machine.Machine.cpu in
      for i = 0 to 9 do
        ignore (Block_io.read blk ~lba:(i * 100) ~count:8 : Content.t array)
      done;
      Block_io.write blk ~lba:5 ~count:4 (Content.data_sectors ~count:4);
      traps_after := Mmio.trapped_accesses rig.machine.Machine.mmio - t0;
      exits_after := Cpu.total_exits rig.machine.Machine.cpu - e0);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  check_int "zero traps after devirt" 0 !traps_after;
  check_int "zero exits after devirt" 0 !exits_after

let test_deployment_progress_monotone () =
  let samples = ref [] in
  let _rig, vmm =
    deploy_and (fun vmm blk ->
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        Sim.spawn (fun () ->
            let rec sample () =
              if Vmm.devirtualized_at vmm = None then begin
                samples := Vmm.progress vmm :: !samples;
                Sim.sleep (Time.ms 200);
                sample ()
              end
            in
            sample ());
        Vmm.wait_devirtualized vmm)
  in
  let s = List.rev !samples in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check_bool "progress monotone" true (mono s);
  check_bool "progress sampled" true (List.length s > 2);
  check_bool "final progress 1.0" true (Vmm.progress vmm >= 1.0)

(* The §3.3 consistency property: a guest write racing the background
   copy is never clobbered by a stale server fill. *)
let test_guest_write_never_clobbered () =
  let writes = ref [] in
  let rig, vmm =
    deploy_and (fun vmm blk ->
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        (* Scatter writes across the image while the copy runs. *)
        let prng = Prng.create 99 in
        for _ = 0 to 63 do
          let lba = Prng.int prng (image_sectors - 8) in
          let data = Content.data_sectors ~count:8 in
          Block_io.write blk ~lba ~count:8 data;
          writes := (lba, data) :: !writes;
          Sim.sleep (Time.ms 20)
        done;
        Vmm.wait_devirtualized vmm)
  in
  ignore vmm;
  (* Later writes overwrite earlier overlapping ones; checking in write
     order with overlap tracking: verify each write's sectors hold
     either its own data or a later write's data. *)
  let disk = rig.machine.Machine.disk in
  let module IntMap = Map.Make (Int) in
  let final = ref IntMap.empty in
  List.iter
    (fun (lba, data) ->
      Array.iteri (fun i c -> final := IntMap.add (lba + i) c !final)
      data)
    (List.rev !writes);
  IntMap.iter
    (fun lba expect ->
      check_bool
        (Printf.sprintf "sector %d keeps guest data" lba)
        true
        (Content.equal (Disk.sector disk lba) expect))
    !final

let prop_random_workload_consistency =
  QCheck.Test.make ~name:"random guest workloads end consistent" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rig = make_rig () in
      let module IntMap = Map.Make (Int) in
      let final = ref IntMap.empty in
      Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
          let vmm =
            Vmm.boot rig.machine ~params:rig.params
              ~server_port:(Vblade.port_id rig.vblade) ()
          in
          let blk = Block_io.attach rig.machine in
          let prng = Prng.create seed in
          for _ = 0 to 39 do
            let lba = Prng.int prng (image_sectors - 64) in
            let count = 1 + Prng.int prng 63 in
            if Prng.bool prng then begin
              let data = Content.data_sectors ~count in
              Block_io.write blk ~lba ~count data;
              Array.iteri (fun i c -> final := IntMap.add (lba + i) c !final) data
            end
            else
              ignore (Block_io.read blk ~lba ~count : Content.t array);
            Sim.sleep (Time.ms (1 + Prng.int prng 30))
          done;
          Vmm.wait_devirtualized vmm);
      Sim.run ~until:(Time.minutes 30) rig.sim;
      let disk = rig.machine.Machine.disk in
      let ok = ref true in
      for lba = 0 to image_sectors - 1 do
        let expect =
          match IntMap.find_opt lba !final with
          | Some c -> c
          | None -> Content.Image lba
        in
        if not (Content.equal (Disk.sector disk lba) expect) then ok := false
      done;
      !ok)

(* --- pooled vs allocating observational equivalence ---

   The frame pool and scratch buffers are allocation mechanics only:
   under the same seed, a full deployment with pooling disabled must
   produce a byte-identical trace and identical VMM totals. Content
   tags come from a global counter, so disks are not comparable across
   two in-process runs — the trace and the counters are. *)
let pooled_run ~pool_frames ~seed =
  let tr = Bmcast_obs.Trace.create ~capacity:(1 lsl 16) () in
  let sim = Sim.create ~trace:tr () in
  let fabric = Fabric.create sim ~pool_frames () in
  let server_disk = Disk.create sim test_disk_profile in
  Disk.fill_with_image server_disk;
  let vblade =
    Vblade.create sim ~fabric ~name:"server" ~disk:server_disk ()
  in
  let machine =
    Machine.create sim ~name:"node0" ~disk_profile:test_disk_profile
      ~disk_kind:Machine.Ahci_disk ~fabric ()
  in
  let params = Params.default ~image_sectors in
  let totals = ref None in
  Sim.spawn_at sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot machine ~params ~server_port:(Vblade.port_id vblade) ()
      in
      let blk = Block_io.attach machine in
      let prng = Prng.create seed in
      for _ = 0 to 19 do
        let lba = Prng.int prng (image_sectors - 64) in
        let count = 1 + Prng.int prng 63 in
        if Prng.bool prng then
          Block_io.write blk ~lba ~count (Content.data_sectors ~count)
        else ignore (Block_io.read blk ~lba ~count : Content.t array);
        Sim.sleep (Time.ms (1 + Prng.int prng 20))
      done;
      Vmm.wait_devirtualized vmm;
      totals := Some (Vmm.totals vmm));
  Sim.run ~until:(Time.minutes 30) sim;
  (Bmcast_obs.Trace.to_jsonl tr, !totals)

let prop_pooling_observationally_identical =
  QCheck.Test.make ~name:"pooled paths identical to allocating paths"
    ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let jsonl_pooled, totals_pooled = pooled_run ~pool_frames:true ~seed in
      let jsonl_alloc, totals_alloc = pooled_run ~pool_frames:false ~seed in
      totals_pooled <> None
      && totals_pooled = totals_alloc
      && String.length jsonl_pooled > 0
      && jsonl_pooled = jsonl_alloc)

(* A guest driver that queues two commands at once (NCQ-style): the
   mediator must track multiple ghost bits, redirect the cold slot and
   pass the warm slot through, and both must complete. *)
let test_multi_slot_guest_commands () =
  let rig = make_rig () in
  let outcome = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      ignore vmm;
      let ahci =
        match rig.machine.Machine.controller with
        | Machine.Ahci a -> a
        | Machine.Ide _ -> assert false
      in
      let module Ahci = Bmcast_storage.Ahci in
      let module Dma = Bmcast_storage.Dma in
      let mmio = rig.machine.Machine.mmio in
      let reg off = Mmio.read mmio (Machine.ahci_base + off) in
      let wreg off v = Mmio.write mmio (Machine.ahci_base + off) v in
      (* Minimal guest driver init. *)
      let clb = Ahci.alloc_cmd_list ahci in
      wreg Ahci.Regs.px_clb clb;
      wreg Ahci.Regs.px_ie 1;
      wreg Ahci.Regs.px_cmd 1;
      (* Slot 0: cold read near the end of the image (will redirect).
         Slot 1: a fresh-region read beyond the image (pass-through). *)
      let buf0 = Dma.alloc rig.machine.Machine.dma ~sectors:16 in
      let buf1 = Dma.alloc rig.machine.Machine.dma ~sectors:16 in
      let t0 =
        Ahci.alloc_cmd_table ahci
          { Ahci.Fis.op = Ahci.Fis.Read; lba = image_sectors - 64; count = 16 }
          [ { Ahci.buf_addr = buf0.Dma.addr; sectors = 16 } ]
      and t1 =
        Ahci.alloc_cmd_table ahci
          { Ahci.Fis.op = Ahci.Fis.Read; lba = image_sectors + 4096; count = 16 }
          [ { Ahci.buf_addr = buf1.Dma.addr; sectors = 16 } ]
      in
      Ahci.set_slot ahci ~clb ~slot:0 ~table_addr:t0;
      Ahci.set_slot ahci ~clb ~slot:1 ~table_addr:t1;
      wreg Ahci.Regs.px_ci 3;
      (* Immediately after issue, the guest must see both bits pending
         (one real, one ghost). *)
      let ci_after = reg Ahci.Regs.px_ci in
      (* Wait for both to drain from the guest's view. *)
      while reg Ahci.Regs.px_ci <> 0 do
        Sim.sleep (Time.ms 1)
      done;
      outcome := Some (ci_after, Array.copy buf0.Dma.data));
  Sim.run ~until:(Time.minutes 5) rig.sim;
  match !outcome with
  | None -> Alcotest.fail "scenario did not finish"
  | Some (ci_after, cold_data) ->
    check_int "both slots pending after issue" 3 ci_after;
    check_bool "cold slot got image data" true
      (Array.for_all2 Content.equal cold_data
         (Content.image_sectors ~lba:(image_sectors - 64) ~count:16))

let test_deployment_survives_packet_loss () =
  (* 2% frame loss on the management network: retransmission keeps the
     deployment correct (just slower). *)
  let rig = make_rig ~loss:0.02 () in
  let vmm_ref = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  let vmm = Option.get !vmm_ref in
  check_bool "deployed despite loss" true (Bitmap.is_complete (Vmm.bitmap vmm));
  check_bool "retransmissions happened" true
    ((Vmm.totals vmm).Vmm.aoe_retransmits > 0);
  check_bool "disk equals image" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:0 ~count:image_sectors)

(* --- moderation --- *)

let test_moderation_suspends_under_load () =
  (* Progress after a fixed horizon must be smaller when the guest
     hammers the disk, because the writer backs off. *)
  let progress_with guest_load =
    let rig = make_rig ~write_interval:(Time.ms 5) () in
    let vmm_ref = ref None in
    Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
        let vmm =
          Vmm.boot rig.machine ~params:rig.params
            ~server_port:(Vblade.port_id rig.vblade) ()
        in
        vmm_ref := Some vmm;
        let blk = Block_io.attach rig.machine in
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        if guest_load then
          let rec hammer i =
            ignore (Block_io.read blk ~lba:(i * 16 mod image_sectors) ~count:8
                    : Content.t array);
            hammer (i + 1)
          in
          hammer 0);
    Sim.run ~until:(Time.s 20) rig.sim;
    Vmm.progress (Option.get !vmm_ref)
  in
  let idle = progress_with false and busy = progress_with true in
  check_bool
    (Printf.sprintf "moderation slows copy (idle %.3f > busy %.3f)" idle busy)
    true (busy < idle *. 0.8)

(* --- IDE paths --- *)

let test_ide_copy_on_read () =
  let got = ref [||] in
  let rig, _vmm =
    deploy_and ~disk_kind:Machine.Ide_disk (fun _vmm blk ->
        got := Block_io.read blk ~lba:3000 ~count:32)
  in
  check_bool "ide redirect data" true
    (Array.for_all2 Content.equal !got (Content.image_sectors ~lba:3000 ~count:32));
  check_bool "written back" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:3000 ~count:32)

let test_ide_full_deployment () =
  let rig = make_rig ~disk_kind:Machine.Ide_disk () in
  let traps_after = ref (-1) in
  let vmm_ref = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      let t0 = Pio.trapped_accesses rig.machine.Machine.pio in
      ignore (Block_io.read blk ~lba:100 ~count:8 : Content.t array);
      traps_after := Pio.trapped_accesses rig.machine.Machine.pio - t0);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  let vmm = Option.get !vmm_ref in
  check_bool "ide deployed" true (Bitmap.is_complete (Vmm.bitmap vmm));
  check_bool "ide disk equals image" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:0 ~count:image_sectors);
  check_int "pio traps frozen after devirt" 0 !traps_after

(* --- bitmap persistence & resume (§3.3) --- *)

let test_bitmap_blob_roundtrip () =
  let b = Bitmap.create ~sectors:10_000 in
  ignore (Bitmap.fill_range b ~lba:100 ~count:3_000 : int);
  ignore (Bitmap.set_filled b 9_999 : bool);
  let blobs = Bitmap.to_blob_sectors b in
  check_int "sector count" (Bitmap.save_sectors ~sectors:10_000)
    (Array.length blobs);
  let b2 = Bitmap.create ~sectors:10_000 in
  Bitmap.load_blob_sectors b2 blobs;
  check_int "filled preserved" (Bitmap.filled_count b) (Bitmap.filled_count b2);
  check_bool "specific bit" true (Bitmap.is_filled b2 9_999);
  check_bool "empty bit" false (Bitmap.is_filled b2 50)

let test_bitmap_load_rejects_garbage () =
  let b = Bitmap.create ~sectors:10_000 in
  check_bool "raises" true
    (try
       Bitmap.load_blob_sectors b
         (Content.zeroes ~count:(Bitmap.save_sectors ~sectors:10_000));
       false
     with Invalid_argument _ -> true)

let test_shutdown_and_resume_deployment () =
  (* Interrupt at mid-deployment, "reboot", resume: the second VMM must
     not refetch what the first already copied, and pre-reboot guest
     writes must survive. *)
  let rig = make_rig () in
  let fetched_before_reboot = ref 0 in
  let fetched_total = ref 0 in
  let guest_data = Content.data_sectors ~count:16 in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let params = rig.params in
      let vmm1 =
        Vmm.boot rig.machine ~params ~server_port:(Vblade.port_id rig.vblade) ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Block_io.write blk ~lba:7_000 ~count:16 guest_data;
      (* Let roughly half the image land, then shut down. *)
      while Vmm.progress vmm1 < 0.5 do
        Sim.sleep (Time.ms 200)
      done;
      Vmm.shutdown vmm1;
      fetched_before_reboot :=
        Bmcast_storage.Disk.bytes_read rig.server_disk;
      (* "Reboot": a fresh VMM resumes on the same machine. *)
      let vmm2 =
        Vmm.boot rig.machine ~params ~server_port:(Vblade.port_id rig.vblade)
          ~resume:true ()
      in
      let blk2 = Block_io.attach rig.machine in
      ignore (Block_io.read blk2 ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm2;
      fetched_total := Bmcast_storage.Disk.bytes_read rig.server_disk);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  let image_bytes = image_sectors * 512 in
  (* The resumed deployment fetched only (roughly) the remaining half,
     not the whole image again. *)
  let second_fetch = !fetched_total - !fetched_before_reboot in
  check_bool
    (Printf.sprintf "second fetch %d MB < 70%% of image" (second_fetch / 1000000))
    true
    (second_fetch < image_bytes * 7 / 10);
  check_bool "first fetch was partial" true
    (!fetched_before_reboot < image_bytes);
  (* Disk correct: guest write survived the reboot and the resumed copy. *)
  check_bool "guest write survived" true
    (Array.for_all2 Content.equal guest_data
       (Disk.peek rig.machine.Machine.disk ~lba:7_000 ~count:16));
  check_bool "rest is image" true
    (content_ok ~disk:rig.machine.Machine.disk ~lba:0 ~count:7_000)

let test_protected_region_shields_bitmap () =
  (* Guest reads/writes aimed at the save region are converted to dummy
     reads: the saved bitmap survives a hostile guest. *)
  let rig = make_rig () in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      while Vmm.progress vmm < 0.3 do
        Sim.sleep (Time.ms 200)
      done;
      Vmm.shutdown vmm;
      (* A (still-running or malicious) guest tries to write over the
         saved bitmap... with the VMM gone this would work, so model
         the §3.3 scenario: attempt the write while a (resumed) VMM is
         resident. *)
      let vmm2 =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ~resume:true ()
      in
      let blk2 = Block_io.attach rig.machine in
      Block_io.write blk2 ~lba:image_sectors ~count:8
        (Content.data_sectors ~count:8);
      (* The write was converted to a dummy read: the on-disk save is
         untouched. *)
      (match Disk.sector rig.machine.Machine.disk image_sectors with
      | Content.Blob _ -> ()
      | c ->
        Alcotest.failf "bitmap save clobbered: %s"
          (Format.asprintf "%a" Content.pp c));
      Vmm.wait_devirtualized vmm2);
  Sim.run ~until:(Time.minutes 30) rig.sim

(* --- NIC mediator (shadow rings, §6) --- *)

module Nic = Bmcast_net.Nic
module Fabric_m = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet
module Nic_mediator = Bmcast_core.Nic_mediator

type nic_rig = {
  nsim : Sim.t;
  nmachine : Machine.t;
  med : Nic_mediator.t;
  sink_rx : Packet.t list ref;
  sink : Bmcast_net.Fabric.port;
}

let nic_med_rig () =
  let nsim = Sim.create () in
  let fabric = Fabric_m.create nsim () in
  let nmachine =
    Machine.create nsim ~name:"n" ~disk_profile:test_disk_profile ~fabric ()
  in
  let sink_rx = ref [] in
  let sink = Fabric_m.attach fabric ~name:"sink" (fun p -> sink_rx := p :: !sink_rx) in
  let med = Nic_mediator.attach nmachine ~poll_interval:(Time.us 30) in
  { nsim; nmachine; med; sink_rx; sink }

(* Guest-side register access goes through the (interposed) MMIO bus. *)
let greg r off = Mmio.read r.nmachine.Machine.mmio (Machine.prod_nic_base + off)
let gwreg r off v = Mmio.write r.nmachine.Machine.mmio (Machine.prod_nic_base + off) v

let test_nicmed_guest_tx_relayed () =
  let r = nic_med_rig () in
  Sim.spawn_at r.nsim Time.zero (fun () ->
      let ring = Nic.default_tx_ring r.nmachine.Machine.prod_nic in
      Nic.set_tx_desc r.nmachine.Machine.prod_nic ~ring ~idx:0
        ~dst:(Fabric_m.port_id r.sink) ~size_bytes:1000 (Packet.Raw "guest");
      gwreg r Nic.Regs.tdt 1;
      (* The guest's view completes. *)
      check_int "guest tdh" 1 (greg r Nic.Regs.tdh));
  Sim.run ~until:(Time.s 2) r.nsim;
  check_int "frame on the wire" 1 (List.length !(r.sink_rx));
  check_int "stat" 1 (Nic_mediator.guest_tx_frames r.med)

let test_nicmed_interleaves_vmm_and_guest () =
  let r = nic_med_rig () in
  Sim.spawn_at r.nsim Time.zero (fun () ->
      let ring = Nic.default_tx_ring r.nmachine.Machine.prod_nic in
      for i = 0 to 4 do
        Nic_mediator.vmm_send r.med ~dst:(Fabric_m.port_id r.sink)
          ~size_bytes:500 (Packet.Raw "vmm");
        Nic.set_tx_desc r.nmachine.Machine.prod_nic ~ring ~idx:i
          ~dst:(Fabric_m.port_id r.sink) ~size_bytes:600 (Packet.Raw "guest");
        gwreg r Nic.Regs.tdt (i + 1)
      done);
  Sim.run ~until:(Time.s 2) r.nsim;
  check_int "all ten frames delivered" 10 (List.length !(r.sink_rx));
  check_int "vmm frames" 5 (Nic_mediator.vmm_tx_frames r.med);
  check_int "guest frames" 5 (Nic_mediator.guest_tx_frames r.med)

let test_nicmed_rx_demux () =
  let r = nic_med_rig () in
  (* VMM filter claims 1500-byte frames; the rest go to the guest. *)
  let vmm_got = ref 0 in
  Nic_mediator.set_vmm_rx r.med (fun p ->
      if p.Packet.size_bytes = 1500 then begin
        incr vmm_got;
        true
      end
      else false);
  let guest_irqs = ref 0 in
  Bmcast_hw.Irq.register r.nmachine.Machine.irq ~vec:Machine.prod_nic_irq_vec
    (fun () -> incr guest_irqs);
  Sim.spawn_at r.nsim Time.zero (fun () ->
      (* Guest publishes RX buffers and enables interrupts. *)
      gwreg r Nic.Regs.rdt 16;
      gwreg r Nic.Regs.ie 1;
      let dst = Fabric_m.port_id (Nic.port r.nmachine.Machine.prod_nic) in
      Fabric_m.send r.sink ~dst ~size_bytes:1500 (Packet.Raw "for-vmm");
      Fabric_m.send r.sink ~dst ~size_bytes:900 (Packet.Raw "for-guest"));
  Sim.run ~until:(Time.s 2) r.nsim;
  check_int "vmm consumed its frame" 1 !vmm_got;
  check_int "guest got one relay" 1 (Nic_mediator.guest_rx_relayed r.med);
  check_int "guest irq injected" 1 !guest_irqs;
  (* The relayed frame sits in the guest's own RX ring. *)
  (match
     Nic.rx_desc r.nmachine.Machine.prod_nic
       ~ring:(Nic.default_rx_ring r.nmachine.Machine.prod_nic) ~idx:0
   with
  | Some p -> check_int "relayed size" 900 p.Packet.size_bytes
  | None -> Alcotest.fail "guest ring empty");
  check_int "guest rdh" 1 (greg r Nic.Regs.rdh)

let test_nicmed_rx_drop_without_buffers () =
  let r = nic_med_rig () in
  Sim.spawn_at r.nsim Time.zero (fun () ->
      let dst = Fabric_m.port_id (Nic.port r.nmachine.Machine.prod_nic) in
      Fabric_m.send r.sink ~dst ~size_bytes:700 (Packet.Raw "x"));
  Sim.run ~until:(Time.s 2) r.nsim;
  check_int "dropped" 1 (Nic_mediator.guest_rx_dropped r.med);
  check_int "not relayed" 0 (Nic_mediator.guest_rx_relayed r.med)

let test_nicmed_devirtualize_hands_back () =
  let r = nic_med_rig () in
  Sim.spawn_at r.nsim Time.zero (fun () ->
      Nic_mediator.devirtualize r.med;
      let traps0 = Mmio.trapped_accesses r.nmachine.Machine.mmio in
      (* Direct guest use after hand-back: program own ring, no traps. *)
      let ring = Nic.default_tx_ring r.nmachine.Machine.prod_nic in
      gwreg r Nic.Regs.tdba ring;
      Nic.set_tx_desc r.nmachine.Machine.prod_nic ~ring ~idx:0
        ~dst:(Fabric_m.port_id r.sink) ~size_bytes:800 (Packet.Raw "direct");
      gwreg r Nic.Regs.tdt 1;
      check_int "no traps after devirt" traps0
        (Mmio.trapped_accesses r.nmachine.Machine.mmio));
  Sim.run r.nsim;
  check_int "frame delivered directly" 1 (List.length !(r.sink_rx))

let test_shared_nic_full_deployment () =
  (* A complete deployment with nic:`Shared: both the storage and the
     NIC mediator must quiesce and de-virtualize. *)
  let rig = make_rig () in
  let traps_after = ref (-1) in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ~nic:`Shared ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      let t0 = Mmio.trapped_accesses rig.machine.Machine.mmio in
      ignore (Block_io.read blk ~lba:100 ~count:8 : Content.t array);
      traps_after := Mmio.trapped_accesses rig.machine.Machine.mmio - t0);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  check_int "zero traps after shared-nic devirt" 0 !traps_after

(* --- management-NIC visibility (§4.3) --- *)

let mgmt_bdf = { Bmcast_hw.Pci.bus = 0; dev = 4; fn = 0 }

let nic_visibility ~hide =
  let rig = make_rig () in
  let visible = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ~hide_mgmt_nic:hide ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      visible :=
        Some (Bmcast_hw.Pci.find rig.machine.Machine.pci mgmt_bdf <> None));
  Sim.run ~until:(Time.minutes 30) rig.sim;
  Option.get !visible

let test_mgmt_nic_found_by_default () =
  (* 4.3: "if the guest OS tries to detect it after de-virtualization,
     it can be found". *)
  check_bool "guest can find the mgmt NIC" true (nic_visibility ~hide:false)

let test_mgmt_nic_hidden_on_request () =
  check_bool "config space filtered" false (nic_visibility ~hide:true)

(* --- VMXOFF modes (§4.3) --- *)

let exits_in_10min ~vmxoff =
  let rig = make_rig () in
  let counts = ref (0, 0) in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ~vmxoff ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      let e0 = Cpu.total_exits rig.machine.Machine.cpu in
      let c0 = Cpu.exits rig.machine.Machine.cpu Cpu.Cpuid in
      Sim.sleep (Time.minutes 10);
      (* Residual CPUID exits are accounted lazily; [Vmm.totals] is the
         sync point that folds them into the CPU counters. *)
      ignore (Vmm.totals vmm);
      counts :=
        ( Cpu.total_exits rig.machine.Machine.cpu - e0,
          Cpu.exits rig.machine.Machine.cpu Cpu.Cpuid - c0 ));
  Sim.run ~until:(Time.minutes 30) rig.sim;
  !counts

let test_vmxoff_resident_cpuid_exits () =
  (* The paper's evaluated configuration: only CPUID still exits, every
     couple of seconds to minutes (5.5.2). *)
  let total, cpuid = exits_in_10min ~vmxoff:`Resident in
  check_bool (Printf.sprintf "some cpuid exits (%d)" cpuid) true (cpuid >= 2);
  check_int "and nothing else" cpuid total

let test_vmxoff_guest_module_silences_cpuid () =
  let total, cpuid = exits_in_10min ~vmxoff:`Guest_module in
  check_int "no cpuid" 0 cpuid;
  check_int "no exits at all" 0 total

let test_vmm_event_log () =
  let rig = make_rig () in
  let events = ref [] in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm;
      events := List.map snd (Vmm.events vmm));
  Sim.run ~until:(Time.minutes 30) rig.sim;
  check_bool "booted logged" true (List.mem "VMM booted" !events);
  check_bool "deployed logged" true (List.mem "image fully deployed" !events);
  check_bool "devirt logged" true (List.mem "de-virtualized" !events)

(* --- whole-deployment determinism --- *)

let test_deployment_deterministic () =
  (* Two identical runs de-virtualize at the same virtual nanosecond and
     fetch the same number of bytes. *)
  let run_once () =
    let rig = make_rig () in
    let out = ref (0, 0) in
    Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
        let vmm =
          Vmm.boot rig.machine ~params:rig.params
            ~server_port:(Vblade.port_id rig.vblade) ()
        in
        let blk = Block_io.attach rig.machine in
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        Vmm.wait_devirtualized vmm;
        out :=
          ( Option.get (Vmm.devirtualized_at vmm),
            (Vmm.totals vmm).Vmm.redirected_bytes ));
    Sim.run ~until:(Time.minutes 30) rig.sim;
    !out
  in
  let t1, b1 = run_once () in
  let t2, b2 = run_once () in
  check_int "same devirt time" t1 t2;
  check_int "same redirected bytes" b1 b2

(* --- memory release extension --- *)

let test_memory_release_extension () =
  let rig, vmm =
    deploy_and ~release_memory:true (fun vmm blk ->
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        Vmm.wait_devirtualized vmm)
  in
  ignore vmm;
  check_int "memory returned" 0
    (Memmap.vmm_reserved_bytes rig.machine.Machine.memmap)

let test_memory_reserved_by_default () =
  let rig, vmm =
    deploy_and (fun vmm blk ->
        ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
        Vmm.wait_devirtualized vmm)
  in
  ignore vmm;
  check_int "prototype keeps its 128 MB" (128 * 1024 * 1024)
    (Memmap.vmm_reserved_bytes rig.machine.Machine.memmap)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [ ( "bitmap",
        [ tc "basics" `Quick test_bitmap_basics;
          tc "empty subranges" `Quick test_bitmap_empty_subranges;
          tc "find empty run" `Quick test_bitmap_find_empty_run;
          tc "serialization" `Quick test_bitmap_serialization;
          QCheck_alcotest.to_alcotest prop_bitmap_fill_count_consistent ] );
      ( "copy-on-read",
        [ tc "returns image data" `Quick test_copy_on_read_returns_image_data;
          tc "cold redirects, warm does not" `Quick
            test_cold_read_redirects_warm_does_not;
          tc "write passthrough" `Quick test_guest_write_passthrough;
          tc "mixed read assembles" `Quick test_mixed_read_assembles_correctly;
          tc "multi-slot guest commands" `Quick test_multi_slot_guest_commands ] );
      ( "deployment",
        [ tc "completes" `Slow test_full_deployment_completes;
          tc "progress monotone" `Slow test_deployment_progress_monotone;
          tc "guest writes never clobbered" `Slow test_guest_write_never_clobbered;
          tc "survives packet loss" `Slow test_deployment_survives_packet_loss;
          QCheck_alcotest.to_alcotest prop_random_workload_consistency;
          QCheck_alcotest.to_alcotest prop_pooling_observationally_identical;
          tc "moderation under load" `Quick test_moderation_suspends_under_load ] );
      ( "ide",
        [ tc "copy on read" `Quick test_ide_copy_on_read;
          tc "full deployment" `Slow test_ide_full_deployment ] );
      ( "persistence",
        [ tc "bitmap blob roundtrip" `Quick test_bitmap_blob_roundtrip;
          tc "load rejects garbage" `Quick test_bitmap_load_rejects_garbage;
          tc "shutdown and resume" `Slow test_shutdown_and_resume_deployment;
          tc "protected region shields bitmap" `Slow
            test_protected_region_shields_bitmap ] );
      ( "nic-mediator",
        [ tc "guest tx relayed" `Quick test_nicmed_guest_tx_relayed;
          tc "interleaves vmm and guest" `Quick test_nicmed_interleaves_vmm_and_guest;
          tc "rx demux" `Quick test_nicmed_rx_demux;
          tc "rx drop without buffers" `Quick test_nicmed_rx_drop_without_buffers;
          tc "devirtualize hands back" `Quick test_nicmed_devirtualize_hands_back;
          tc "shared-nic full deployment" `Slow test_shared_nic_full_deployment ] );
      ( "devirtualization",
        [ tc "zero overhead" `Quick test_devirt_zero_overhead;
          tc "memory release extension" `Quick test_memory_release_extension;
          tc "memory reserved by default" `Quick test_memory_reserved_by_default;
          tc "mgmt NIC visible by default" `Quick test_mgmt_nic_found_by_default;
          tc "mgmt NIC hidden on request" `Quick test_mgmt_nic_hidden_on_request;
          tc "vmxoff resident: cpuid residual" `Slow test_vmxoff_resident_cpuid_exits;
          tc "vmxoff guest module silences cpuid" `Slow
            test_vmxoff_guest_module_silences_cpuid;
          tc "event log" `Quick test_vmm_event_log;
          tc "deployment deterministic" `Slow test_deployment_deterministic ] ) ]
